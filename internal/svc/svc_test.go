package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinySpec is the 2-config grid every API test runs: small enough to
// simulate in milliseconds, rich enough to exercise two pairings.
func tinySpec() experiment.GridSpec {
	return experiment.GridSpec{
		Bandwidths: "100Mbps",
		Queues:     "2",
		AQMs:       "fifo",
		Pairings:   "reno:reno,cubic:cubic",
		Duration:   "1s",
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, &Client{Base: hs.URL, HTTP: hs.Client()}
}

// wallNS strips machine timing from result JSON so byte comparisons grade
// the science, not the stopwatch.
var wallNS = regexp.MustCompile(`"wall_ns": \d+`)

func stripWall(b []byte) []byte {
	return wallNS.ReplaceAll(b, []byte(`"wall_ns": 0`))
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test ./internal/svc -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func waitDone(t *testing.T, c *Client, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateCancelled {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return Status{}
}

// TestAPIGolden pins the wire format of the status, results, and report
// endpoints on the tiny 2-config grid.
func TestAPIGolden(t *testing.T) {
	_, client := newTestServer(t, Options{Shards: 1})
	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 2 || st.Cached != 0 {
		t.Fatalf("fresh submit: %+v", st)
	}
	if err := client.Stream(context.Background(), st.ID, nil); err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, client, st.ID)
	if st.State != StateDone || st.Errored != 0 || st.Simulated != 2 {
		t.Fatalf("final status: %+v", st)
	}

	raw, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "status.golden.json", append(raw, '\n'))

	results, err := client.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "results.golden.json", stripWall(results))

	report, err := client.Report(st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden.md", report)
}

// TestServedMatchesLocalSweep: the service must be a cache in front of the
// exact computation cmd/sweep performs — same results, same order, same
// provenance note, byte-identical modulo wall_ns.
func TestServedMatchesLocalSweep(t *testing.T) {
	spec := tinySpec()
	cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	local, err := experiment.RunAllOpts(cfgs, experiment.RunAllOptions{Workers: 2, KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := experiment.WriteJSON(&want, &experiment.ResultSet{Note: spec.Note(), Results: local}); err != nil {
		t.Fatal(err)
	}

	_, client := newTestServer(t, Options{Shards: 2})
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, client, st.ID)
	served, err := client.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripWall(served), stripWall(want.Bytes())) {
		t.Errorf("served bytes differ from a local sweep of the same spec.\n--- served ---\n%s\n--- local ---\n%s",
			stripWall(served), stripWall(want.Bytes()))
	}
}

// TestCacheHitPath: an identical POST coalesces onto the existing job; an
// equivalent spec under a different key is served entirely from the
// content-addressed cache with zero new simulations; and the journal warms
// a restarted server.
func TestCacheHitPath(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "cache.ckpt.jsonl")
	s, client := newTestServer(t, Options{Shards: 1, Journal: journal})

	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, client, st.ID)
	if got := s.pool.Sims(); got != 2 {
		t.Fatalf("first job simulated %d configs, want 2", got)
	}

	// Identical POST: answered by the same job, nothing scheduled.
	st2, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("identical spec got a different job: %s vs %s", st2.ID, st.ID)
	}
	if st2.State != StateDone {
		t.Fatalf("coalesced job state %s, want done", st2.State)
	}
	if got := s.pool.Sims(); got != 2 {
		t.Fatalf("coalesced POST triggered simulations: %d", got)
	}
	if s.jobsCoalesced.Load() != 1 {
		t.Fatalf("job coalesce counter = %d, want 1", s.jobsCoalesced.Load())
	}

	// Same grid under a different spec key (audit toggled — excluded from
	// config identity): a new job, served 100% from the config cache.
	audited := tinySpec()
	audited.Audit = true
	st3, err := client.Submit(audited)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ID == st.ID {
		t.Fatal("audit toggle should be a distinct job key")
	}
	st3 = waitDone(t, client, st3.ID)
	if st3.Cached != 2 || st3.Simulated != 0 {
		t.Fatalf("cache-path job: %+v, want 2 cached / 0 simulated", st3)
	}
	if got := s.pool.Sims(); got != 2 {
		t.Fatalf("cache-path job re-simulated: sims = %d", got)
	}

	// The counters must be visible on /metrics in Prometheus text format.
	metrics, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sweepd_cache_hits_total 2",
		"sweepd_sims_total 2",
		"sweepd_jobs_coalesced_total 1",
		"sweepd_jobs_done 2",
		"# TYPE sweepd_cache_hits_total counter",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Results served straight from cache must be byte-identical to the
	// originals (same configs, audit bit excluded from identity).
	r1, err := client.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := client.Results(st3.ID)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(b []byte) []byte { // the two notes differ (different spec keys)
		lines := bytes.SplitN(b, []byte("\n"), 3)
		return lines[len(lines)-1]
	}
	if !bytes.Equal(norm(r1), norm(r3)) {
		t.Error("cache-served results differ from the originally simulated ones")
	}

	// A restarted daemon warms its cache from the journal.
	hs2 := httptest.NewServer(mustServer(t, Options{Shards: 1, Journal: journal}).Handler())
	defer hs2.Close()
	client2 := &Client{Base: hs2.URL}
	st4, err := client2.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	st4 = waitDone(t, client2, st4.ID)
	if st4.Cached != 2 || st4.Simulated != 0 {
		t.Fatalf("restarted server did not serve from journal: %+v", st4)
	}
}

// TestOverridesArePartOfCacheIdentity: two specs that expand to the same
// grid cells but differ in a science-affecting override (duration, paper
// scale) must never serve each other's cached results — each override is
// simulated on its own. (Regression: the cache was once keyed by
// Config.ID, which omits the overrides.)
func TestOverridesArePartOfCacheIdentity(t *testing.T) {
	s, client := newTestServer(t, Options{Shards: 1})
	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, client, st.ID)
	if got := s.pool.Sims(); got != 2 {
		t.Fatalf("first job simulated %d configs, want 2", got)
	}

	longer := tinySpec()
	longer.Duration = "2s"
	st2, err := client.Submit(longer)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Fatal("duration override should be a distinct job key")
	}
	st2 = waitDone(t, client, st2.ID)
	if st2.Cached != 0 || st2.Simulated != 2 {
		t.Fatalf("2s job served 1s results from cache: %+v, want 0 cached / 2 simulated", st2)
	}
	if got := s.pool.Sims(); got != 4 {
		t.Fatalf("2s job did not re-simulate: sims = %d, want 4", got)
	}

	// The served result bodies must actually differ — same grid cells,
	// different physics. (The notes differ trivially, so compare past them.)
	r1, err := client.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := client.Results(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	body := func(b []byte) []byte {
		lines := bytes.SplitN(b, []byte("\n"), 3)
		return lines[len(lines)-1]
	}
	if bytes.Equal(stripWall(body(r1)), stripWall(body(r2))) {
		t.Error("1s and 2s sweeps served identical result bodies")
	}
}

// TestPoolCloseFailsQueuedWork: configurations accepted but never started
// must come back errored at shutdown, so their jobs complete and a polling
// client sees the failure instead of hanging on work that will never run.
func TestPoolCloseFailsQueuedWork(t *testing.T) {
	started, proceed := gateSims(t)
	p := NewPool(1, func(cfg experiment.Config) experiment.Result {
		return experiment.Result{Config: cfg.Normalize(), Jain: 1}
	}, nil, nil)
	spec := tinySpec()
	spec.Seeds = 2 // 4 configs
	canonical, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	j := newJob("job", canonical, cfgs)
	for i := range cfgs {
		p.Do(j.keys[i], cfgs[i], j, i)
	}
	<-started // config 0 is on the worker; 1..3 are queued

	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	waitFor(t, "shard close", func() bool {
		p.shards[0].mu.Lock()
		defer p.shards[0].mu.Unlock()
		return p.shards[0].closed
	})
	close(proceed) // release the running simulation so Close can drain
	<-closed

	st := j.Status()
	if st.State != StateDone || st.Done != 4 || st.Errored != 3 {
		t.Fatalf("after pool close: %+v, want done with 1 clean / 3 errored", st)
	}

	// Do on an already-closed pool must fail the slot immediately.
	j2 := newJob("job2", canonical, cfgs)
	p.Do(j2.keys[0], cfgs[0], j2, 0)
	if st := j2.Status(); st.Done != 1 || st.Errored != 1 {
		t.Fatalf("Do on closed pool: %+v, want an immediate errored delivery", st)
	}
}

func mustServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestEventsStreamOrdering: the NDJSON stream must replay one line per
// completed configuration with dense ascending seq, done counters, and —
// with a single shard — completion in canonical grid order.
func TestEventsStreamOrdering(t *testing.T) {
	_, client := newTestServer(t, Options{Shards: 1})
	spec := tinySpec()
	spec.Seeds = 2 // 4 configs
	cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, client, st.ID)

	var events []Event
	if err := client.Stream(context.Background(), st.ID, func(ev Event) {
		events = append(events, ev)
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(cfgs) {
		t.Fatalf("streamed %d events, want %d", len(events), len(cfgs))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Done != i+1 || ev.Total != len(cfgs) {
			t.Errorf("event %d progress %d/%d, want %d/%d", i, ev.Done, ev.Total, i+1, len(cfgs))
		}
		if want := cfgs[i].Normalize().ID(); ev.ConfigID != want {
			t.Errorf("event %d completed %s, want grid-order %s", i, ev.ConfigID, want)
		}
		if ev.Cached || ev.Error != "" {
			t.Errorf("event %d unexpectedly cached/errored: %+v", i, ev)
		}
	}
}

// gateSims installs a pool test hook that reports each simulation start on
// the returned channel and blocks it until the test sends on proceed.
func gateSims(t *testing.T) (started chan string, proceed chan struct{}) {
	t.Helper()
	started = make(chan string, 16)
	proceed = make(chan struct{})
	prev := testHookBeforeSim
	testHookBeforeSim = func(id string) {
		started <- id
		<-proceed
	}
	t.Cleanup(func() { testHookBeforeSim = prev })
	return started, proceed
}

// TestDisconnectCancelsRemainingWork: when the only event subscriber
// disconnects mid-job, the job's queued configurations are released unrun;
// the configuration already running drains into the cache.
func TestDisconnectCancelsRemainingWork(t *testing.T) {
	started, proceed := gateSims(t)
	s, client := newTestServer(t, Options{Shards: 1})
	spec := tinySpec()
	spec.Seeds = 2 // 4 configs
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started // first config is on the worker, three are queued

	// A results fetch on an incomplete job must 409, not block or serve
	// partial data.
	if _, err := client.Results(st.ID); err == nil || !strings.Contains(err.Error(), "not complete") {
		t.Fatalf("partial results fetch: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	streamErr := make(chan error, 1)
	go func() { streamErr <- client.Stream(ctx, st.ID, nil) }()
	// The subscriber must be registered before the disconnect means
	// anything; poll for it.
	s.mu.Lock()
	j := s.jobs[st.ID]
	s.mu.Unlock()
	waitFor(t, "subscriber registration", func() bool {
		j.mu.Lock()
		defer j.mu.Unlock()
		return len(j.subs) == 1
	})
	cancel()
	<-streamErr
	waitFor(t, "cancellation", func() bool { return j.State() == StateCancelled })

	close(proceed) // let the running simulation (and any stragglers) finish
	waitFor(t, "pool drain", func() bool {
		s.pool.mu.Lock()
		defer s.pool.mu.Unlock()
		return len(s.pool.inflight) == 0
	})
	if got := s.pool.Sims(); got != 1 {
		t.Errorf("cancelled job simulated %d configs, want 1 (only the one already running)", got)
	}
	if s.cache.Len() != 1 {
		t.Errorf("drained configuration missing from cache: %d entries", s.cache.Len())
	}
	if _, err := client.Results(st.ID); err == nil {
		t.Error("cancelled job served results")
	}

	// Re-POSTing the identical spec must not coalesce onto the cancelled
	// job: the tombstone is replaced by a fresh job that reuses the drained
	// config from cache and simulates only the abandoned remainder.
	st2, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("identical spec changed job ID after cancel: %s vs %s", st2.ID, st.ID)
	}
	if st2.State == StateCancelled {
		t.Fatal("resubmission coalesced onto the cancelled job")
	}
	for i := 0; i < 3; i++ {
		<-started
	}
	st2 = waitDone(t, client, st2.ID)
	if st2.State != StateDone || st2.Cached != 1 || st2.Simulated != 3 {
		t.Fatalf("resubmission after cancel: %+v, want done with 1 cached / 3 simulated", st2)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSubmitValidation: malformed and invalid specs must 400 with a JSON
// error, unknown jobs must 404.
func TestSubmitValidation(t *testing.T) {
	_, client := newTestServer(t, Options{Shards: 1})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := client.http().Post(client.url("/v1/sweeps"), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for _, body := range []string{
		`{not json`,
		`{"bandwidths":"100Parsecs"}`,
		`{"pairings":"bbr9:cubic"}`,
		`{"no_such_field":true}`,
	} {
		resp := post(body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s → %d, want 400", body, resp.StatusCode)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Errorf("POST %s: error body not JSON: %v", body, err)
		}
		resp.Body.Close()
	}
	if _, err := client.Status("deadbeef"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job status: %v", err)
	}
	if err := client.Stream(context.Background(), "deadbeef", nil); err == nil {
		t.Error("unknown job stream should error")
	}
}
