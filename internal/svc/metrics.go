package svc

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// histogram is a fixed-bucket Prometheus-style histogram. It is plain data;
// the owner serializes access (the pool holds it under histMu).
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []uint64  // len(bounds)+1, last bucket is +Inf
	sum    float64
	count  uint64
}

func newHistogram(bounds ...float64) histogram {
	return histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

func (h *histogram) clone() histogram {
	c := *h
	c.bounds = append([]float64(nil), h.bounds...)
	c.counts = append([]uint64(nil), h.counts...)
	return c
}

// metricsSnapshot gathers every exported gauge and counter at scrape time.
// Jobs are few (one per distinct spec), so walking the registry per scrape
// is cheaper than maintaining racy gauges.
type metricsSnapshot struct {
	jobsQueued, jobsRunning, jobsDone, jobsCancelled int
	jobsCoalesced                                    uint64
	cacheHits, cacheMisses                           uint64
	cacheEntries                                     int
	configsCoalesced                                 uint64
	sims, simEvents                                  uint64
	simWall                                          time.Duration
	heapInuse                                        uint64
}

func (s *Server) snapshot() metricsSnapshot {
	var m metricsSnapshot
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.State() {
		case StateQueued:
			m.jobsQueued++
		case StateRunning:
			m.jobsRunning++
		case StateDone:
			m.jobsDone++
		case StateCancelled:
			m.jobsCancelled++
		}
	}
	s.mu.Unlock()
	m.jobsCoalesced = s.jobsCoalesced.Load()
	m.cacheHits = s.cache.Hits()
	m.cacheMisses = s.cache.Misses()
	m.cacheEntries = s.cache.Len()
	m.configsCoalesced = s.pool.Coalesced()
	m.sims = s.pool.Sims()
	m.simEvents = s.pool.SimEvents()
	m.simWall = time.Duration(s.pool.SimWallNS())
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.heapInuse = ms.HeapInuse
	return m
}

// handleMetrics serves the daemon's operational counters in Prometheus
// text exposition format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.snapshot()
	var b strings.Builder
	emit := func(name, kind, help string, value float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			name, help, name, kind, name, strconv.FormatFloat(value, 'g', -1, 64))
	}
	emit("sweepd_jobs_queued", "gauge",
		"Jobs accepted with no configuration finished yet.", float64(m.jobsQueued))
	emit("sweepd_jobs_running", "gauge",
		"Jobs with at least one configuration finished and more outstanding.", float64(m.jobsRunning))
	emit("sweepd_jobs_done", "gauge",
		"Jobs whose every configuration has completed.", float64(m.jobsDone))
	emit("sweepd_jobs_cancelled", "gauge",
		"Jobs cancelled by their last event subscriber disconnecting.", float64(m.jobsCancelled))
	emit("sweepd_jobs_coalesced_total", "counter",
		"Submissions answered by an existing job with the same spec key.", float64(m.jobsCoalesced))
	emit("sweepd_cache_hits_total", "counter",
		"Configuration lookups served from the content-addressed cache.", float64(m.cacheHits))
	emit("sweepd_cache_misses_total", "counter",
		"Configuration lookups that required scheduling a simulation.", float64(m.cacheMisses))
	emit("sweepd_cache_entries", "gauge",
		"Distinct configuration results held in the cache.", float64(m.cacheEntries))
	emit("sweepd_configs_coalesced_total", "counter",
		"Configuration requests that joined an in-flight simulation.", float64(m.configsCoalesced))
	emit("sweepd_sims_total", "counter",
		"Configurations actually simulated by the pool.", float64(m.sims))
	emit("sweepd_sim_events_total", "counter",
		"Cumulative simulator events across all simulations.", float64(m.simEvents))
	rate := 0.0
	if m.simWall > 0 {
		rate = float64(m.simEvents) / m.simWall.Seconds()
	}
	emit("sweepd_sim_events_per_second", "gauge",
		"Aggregate simulator speed: events per wall-clock second of simulation.", rate)
	emit("sweepd_heap_inuse_bytes", "gauge",
		"Bytes in in-use heap spans (runtime.MemStats.HeapInuse).", float64(m.heapInuse))

	emitHist := func(name, help string, h histogram) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n",
				name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
		fmt.Fprintf(&b, "%s_sum %s\n", name, strconv.FormatFloat(h.sum, 'g', -1, 64))
		fmt.Fprintf(&b, "%s_count %d\n", name, h.count)
	}
	wallHist, rateHist, peakQ := s.pool.Histograms()
	emitHist("sweepd_sim_wall_seconds",
		"Wall-clock duration of each simulated configuration.", wallHist)
	emitHist("sweepd_sim_config_events_per_second",
		"Simulator event rate of each simulated configuration.", rateHist)
	emit("sweepd_sim_peak_queue_bytes", "gauge",
		"Largest bottleneck-queue occupancy (bytes) any simulated configuration reached.", float64(peakQ))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
