package svc

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// buildVersion identifies the binary on /metrics. Overridable at link time:
//
//	go build -ldflags "-X repro/internal/svc.buildVersion=v1.2.3"
var buildVersion = "dev"

// histogram is a fixed-bucket Prometheus-style histogram. It is plain data;
// the owner serializes access (the pool holds it under histMu).
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []uint64  // len(bounds)+1, last bucket is +Inf
	sum    float64
	count  uint64
}

func newHistogram(bounds ...float64) histogram {
	return histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

func (h *histogram) clone() histogram {
	c := *h
	c.bounds = append([]float64(nil), h.bounds...)
	c.counts = append([]uint64(nil), h.counts...)
	return c
}

// metricsSnapshot gathers every exported gauge and counter at scrape time.
// Jobs are few (one per distinct spec), so walking the registry per scrape
// is cheaper than maintaining racy gauges.
type metricsSnapshot struct {
	jobsQueued, jobsRunning, jobsDone, jobsCancelled int
	jobsCoalesced                                    uint64
	cacheHits, cacheMisses                           uint64
	cacheEntries                                     int
	configsCoalesced                                 uint64
	sims, simEvents                                  uint64
	simWall                                          time.Duration
	heapInuse                                        uint64

	journalDegraded bool
	journalOverflow int
	journalErrs     uint64
}

func (s *Server) snapshot() metricsSnapshot {
	var m metricsSnapshot
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.State() {
		case StateQueued:
			m.jobsQueued++
		case StateRunning:
			m.jobsRunning++
		case StateDone:
			m.jobsDone++
		case StateCancelled:
			m.jobsCancelled++
		}
	}
	s.mu.Unlock()
	m.jobsCoalesced = s.jobsCoalesced.Load()
	m.cacheHits = s.cache.Hits()
	m.cacheMisses = s.cache.Misses()
	m.cacheEntries = s.cache.Len()
	if s.pool != nil { // coordinator mode has no local pool; workers simulate
		m.configsCoalesced = s.pool.Coalesced()
		m.sims = s.pool.Sims()
		m.simEvents = s.pool.SimEvents()
		m.simWall = time.Duration(s.pool.SimWallNS())
	}
	m.journalDegraded, m.journalOverflow, m.journalErrs, _ = s.cache.Degraded()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.heapInuse = ms.HeapInuse
	return m
}

// handleMetrics serves the daemon's operational counters in Prometheus
// text exposition format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.snapshot()
	var b strings.Builder
	emit := func(name, kind, help string, value float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			name, help, name, kind, name, strconv.FormatFloat(value, 'g', -1, 64))
	}
	// The emit helper is label-less; build_info is the one labeled gauge.
	fmt.Fprintf(&b, "# HELP sweepd_build_info Build metadata: constant 1 labeled with the binary version and Go toolchain.\n"+
		"# TYPE sweepd_build_info gauge\nsweepd_build_info{version=%q,go_version=%q} 1\n",
		buildVersion, runtime.Version())
	emit("sweepd_jobs_queued", "gauge",
		"Jobs accepted with no configuration finished yet.", float64(m.jobsQueued))
	emit("sweepd_jobs_running", "gauge",
		"Jobs with at least one configuration finished and more outstanding.", float64(m.jobsRunning))
	emit("sweepd_jobs_done", "gauge",
		"Jobs whose every configuration has completed.", float64(m.jobsDone))
	emit("sweepd_jobs_cancelled", "gauge",
		"Jobs cancelled by their last event subscriber disconnecting.", float64(m.jobsCancelled))
	emit("sweepd_jobs_coalesced_total", "counter",
		"Submissions answered by an existing job with the same spec key.", float64(m.jobsCoalesced))
	emit("sweepd_cache_hits_total", "counter",
		"Configuration lookups served from the content-addressed cache.", float64(m.cacheHits))
	emit("sweepd_cache_misses_total", "counter",
		"Configuration lookups that required scheduling a simulation.", float64(m.cacheMisses))
	emit("sweepd_cache_entries", "gauge",
		"Distinct configuration results held in the cache.", float64(m.cacheEntries))
	degraded := 0.0
	if m.journalDegraded {
		degraded = 1
	}
	emit("sweepd_journal_degraded", "gauge",
		"1 while the journal is unwritable and results are shedding to memory overflow.", degraded)
	emit("sweepd_journal_overflow_results", "gauge",
		"Results held only in the in-memory overflow, awaiting a healed journal.", float64(m.journalOverflow))
	emit("sweepd_journal_errors_total", "counter",
		"Journal append failures (disk full, I/O errors) absorbed by the overflow.", float64(m.journalErrs))
	if s.pool != nil {
		emit("sweepd_configs_coalesced_total", "counter",
			"Configuration requests that joined an in-flight simulation.", float64(m.configsCoalesced))
		emit("sweepd_sims_total", "counter",
			"Configurations actually simulated by the pool.", float64(m.sims))
		emit("sweepd_sim_events_total", "counter",
			"Cumulative simulator events across all simulations.", float64(m.simEvents))
		rate := 0.0
		if m.simWall > 0 {
			rate = float64(m.simEvents) / m.simWall.Seconds()
		}
		emit("sweepd_sim_events_per_second", "gauge",
			"Aggregate simulator speed: events per wall-clock second of simulation.", rate)
	}
	emit("sweepd_heap_inuse_bytes", "gauge",
		"Bytes in in-use heap spans (runtime.MemStats.HeapInuse).", float64(m.heapInuse))

	if s.pool != nil {
		emitHist := func(name, help string, h histogram) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n",
					name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
			fmt.Fprintf(&b, "%s_sum %s\n", name, strconv.FormatFloat(h.sum, 'g', -1, 64))
			fmt.Fprintf(&b, "%s_count %d\n", name, h.count)
		}
		wallHist, rateHist, peakQ := s.pool.Histograms()
		emitHist("sweepd_sim_wall_seconds",
			"Wall-clock duration of each simulated configuration.", wallHist)
		emitHist("sweepd_sim_config_events_per_second",
			"Simulator event rate of each simulated configuration.", rateHist)
		emit("sweepd_sim_peak_queue_bytes", "gauge",
			"Largest bottleneck-queue occupancy (bytes) any simulated configuration reached.", float64(peakQ))
		convHist, episodes := s.pool.FairnessStats()
		emitHist("sweepd_fairness_convergence_seconds",
			"Sim-time until the windowed Jain index first sustained the convergence threshold, per converged fairness-armed configuration.", convHist)
		emit("sweepd_fairness_episodes_total", "counter",
			"Starvation episodes detected across all fairness-armed configurations.", float64(episodes))
	}

	if s.cluster != nil {
		cs := s.cluster.snapshot()
		emit("sweepd_cluster_workers", "gauge",
			"Workers currently registered with the coordinator.", float64(cs.workers))
		emit("sweepd_cluster_leases_active", "gauge",
			"Leases currently outstanding across all workers.", float64(cs.leasesActive))
		emit("sweepd_cluster_pending_configs", "gauge",
			"Configurations waiting to be leased.", float64(cs.pendingConfigs))
		emit("sweepd_cluster_leased_configs", "gauge",
			"Configurations leased to workers and not yet uploaded.", float64(cs.leasedConfigs))
		emit("sweepd_cluster_workers_joined_total", "counter",
			"Worker registrations, including re-registrations after a partition.", float64(cs.c.workersJoined))
		emit("sweepd_cluster_workers_dead_total", "counter",
			"Workers reaped for missing heartbeats past the lease TTL.", float64(cs.c.workersDead))
		emit("sweepd_cluster_heartbeats_total", "counter",
			"Heartbeats accepted from registered workers.", float64(cs.c.heartbeats))
		emit("sweepd_cluster_leases_granted_total", "counter",
			"Leases granted to workers.", float64(cs.c.leasesGranted))
		emit("sweepd_cluster_leases_expired_total", "counter",
			"Leases taken back because their deadline passed unrenewed.", float64(cs.c.leasesExpired))
		emit("sweepd_cluster_leases_released_total", "counter",
			"Leases handed back voluntarily by draining workers.", float64(cs.c.leasesReleased))
		emit("sweepd_cluster_leases_stolen_total", "counter",
			"Steal events: an idle worker took the tail of a straggler's lease.", float64(cs.c.leasesStolen))
		emit("sweepd_cluster_configs_leased_total", "counter",
			"Configurations granted across all leases.", float64(cs.c.configsLeased))
		emit("sweepd_cluster_configs_requeued_total", "counter",
			"Configurations moved back to pending by expiry, worker death, or release.", float64(cs.c.configsRequeued))
		emit("sweepd_cluster_configs_stolen_total", "counter",
			"Configurations moved between live leases by work stealing.", float64(cs.c.configsStolen))
		emit("sweepd_cluster_results_total", "counter",
			"Unique results accepted from workers.", float64(cs.c.results))
		emit("sweepd_cluster_duplicate_results_total", "counter",
			"Idempotent re-uploads: RPC retries and stolen double-executions.", float64(cs.c.duplicateResults))
		emit("sweepd_cluster_quarantined", "gauge",
			"Configurations currently quarantined after exhausting their lease retry budget.", float64(cs.quarantined))
		emit("sweepd_cluster_configs_quarantined_total", "counter",
			"Configurations quarantined as poison after exhausting their lease retry budget.", float64(cs.c.configsQuarantined))
		emit("sweepd_cluster_quarantine_served_total", "counter",
			"Enqueues answered directly from a quarantine record.", float64(cs.c.quarantineServed))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
