package svc

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/experiment"
)

// Cluster task lifecycle. A task is one configuration the coordinator owes
// an answer for. It is pending until granted to a worker inside a lease,
// leased while some worker's lease holds it, and done once any worker's
// upload lands (at which point it leaves the table — the result lives in
// the content-addressed cache). Expiry, worker death, and explicit release
// move a task from leased back to pending; work stealing moves it from one
// live lease to another without touching the state.
type taskState uint8

const (
	taskPending taskState = iota
	taskLeased
	taskDone
)

// clusterTask is one configuration awaiting a worker, shared by every job
// that requested it (the cluster-level half of the two-level singleflight:
// jobs coalesce onto one task exactly as pool waiters coalesce onto one
// flight).
type clusterTask struct {
	key     string // Config.Key(): the science identity
	cfg     experiment.Config
	state   taskState
	lease   *lease // the lease currently holding the task (leased only)
	waiters []waiter

	// Retry accounting for poison-config quarantine: failures counts the
	// leases this task lost to expiry or worker death (graceful releases are
	// free), failLog keeps one line per loss for the quarantine Result.
	failures int
	failLog  []string
}

// lease is one worker's claim on a batch of tasks: a deadline after which
// the coordinator takes the work back, and the set of keys not yet
// uploaded. keys preserves grant order so work stealing can take the tail —
// the configs the straggling worker is furthest from reaching.
type lease struct {
	id        string
	worker    string
	deadline  time.Time
	keys      []string // grant order (superset of remaining; stolen/done keys stay listed)
	remaining map[string]*clusterTask
}

// tail returns up to n remaining tasks from the back of the grant order —
// the work a straggler would reach last, and therefore the cheapest to
// steal without colliding with its current simulation.
func (l *lease) tail(n int) []*clusterTask {
	var out []*clusterTask
	for i := len(l.keys) - 1; i >= 0 && len(out) < n; i-- {
		if t, ok := l.remaining[l.keys[i]]; ok {
			out = append(out, t)
		}
	}
	return out
}

// clusterWorker is one registered worker: liveness timestamp and the leases
// it currently holds.
type clusterWorker struct {
	id       string
	name     string
	lastSeen time.Time
	leases   map[string]*lease
}

// hashRing maps configuration keys onto workers by consistent hashing:
// every worker projects ringPointsPerWorker virtual points onto a 64-bit
// ring, and a key belongs to the worker owning the first point at or after
// the key's hash. Worker churn moves only the keys adjacent to the joining
// or leaving worker's points, so a mostly-stable cluster keeps a mostly-
// stable shard map — which keeps lease batches aligned with any worker-
// local caches across re-leases.
const ringPointsPerWorker = 64

type ringPoint struct {
	hash   uint64
	worker string
}

type hashRing struct {
	points []ringPoint
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// add projects a worker's virtual points onto the ring.
func (r *hashRing) add(workerID string) {
	for i := 0; i < ringPointsPerWorker; i++ {
		r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", workerID, i)), workerID})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// remove deletes a worker's points.
func (r *hashRing) remove(workerID string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.worker != workerID {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// owner returns the worker a key belongs to, or "" on an empty ring.
func (r *hashRing) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].worker
}
