package svc

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestTraceEndpoint: with -trace armed, a completed sweep serves one NDJSON
// telemetry stream per configuration, each introduced by a {"config",...}
// header line, and ?config= narrows to one configuration. The dumps must
// survive the strict parser after the headers are stripped.
func TestTraceEndpoint(t *testing.T) {
	_, client := newTestServer(t, Options{Shards: 1, Trace: true})
	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, client, st.ID)
	if st.Simulated != 2 {
		t.Fatalf("final status: %+v", st)
	}

	resp, err := client.http().Get(client.url("/v1/sweeps/" + st.ID + "/trace"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Split the stream the same way cmd/timeline does: header lines
	// delimit per-config dumps.
	var keys []string
	var chunks []string
	var cur strings.Builder
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, `{"config":`) {
			if cur.Len() > 0 {
				chunks = append(chunks, cur.String())
				cur.Reset()
			}
			keys = append(keys, line)
			continue
		}
		cur.WriteString(line)
		cur.WriteString("\n")
	}
	if cur.Len() > 0 {
		chunks = append(chunks, cur.String())
	}
	if len(keys) != 2 || len(chunks) != 2 {
		t.Fatalf("want 2 config sections, got %d headers / %d dumps:\n%s", len(keys), len(chunks), body)
	}
	for i, chunk := range chunks {
		d, err := telemetry.ParseNDJSON(strings.NewReader(chunk))
		if err != nil {
			t.Fatalf("section %d is not valid telemetry NDJSON: %v", i, err)
		}
		events := 0
		for _, ring := range d.Rings {
			events += len(ring.Events)
		}
		if events == 0 {
			t.Fatalf("section %d recorded no events", i)
		}
	}

	// ?config= narrows to one configuration.
	key := keys[0]
	key = key[strings.Index(key, `:"`)+2:]
	key = key[:strings.Index(key, `"`)]
	resp2, err := client.http().Get(client.url("/v1/sweeps/" + st.ID + "/trace?config=" + key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	narrowed, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(narrowed), `{"config":`); got != 1 {
		t.Fatalf("?config= filter served %d sections, want 1:\n%s", got, narrowed)
	}

	// An unknown key has nothing to stream.
	resp3, err := client.http().Get(client.url("/v1/sweeps/" + st.ID + "/trace?config=nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown config key: %d, want 404", resp3.StatusCode)
	}
}

// TestTraceEndpointDisabled: without -trace the endpoint must 404 with a
// hint, not serve an empty stream.
func TestTraceEndpointDisabled(t *testing.T) {
	_, client := newTestServer(t, Options{Shards: 1})
	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, client, st.ID)
	resp, err := client.http().Get(client.url("/v1/sweeps/" + st.ID + "/trace"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced sweep trace fetch: %d, want 404", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "-trace") {
		t.Fatalf("404 body should point at the -trace flag: %s", body)
	}
}

// TestTracedResultsStayByteIdentical: arming -trace must not perturb the
// science. A traced daemon's served results must match an untraced daemon's
// byte for byte (modulo wall_ns).
func TestTracedResultsStayByteIdentical(t *testing.T) {
	_, plainClient := newTestServer(t, Options{Shards: 1})
	_, tracedClient := newTestServer(t, Options{Shards: 1, Trace: true})

	st1, err := plainClient.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, plainClient, st1.ID)
	st2, err := tracedClient.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, tracedClient, st2.ID)

	r1, err := plainClient.Results(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tracedClient.Results(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(stripWall(r1)) != string(stripWall(r2)) {
		t.Errorf("tracing changed served result bytes.\n--- untraced ---\n%s\n--- traced ---\n%s",
			stripWall(r1), stripWall(r2))
	}
}

// TestPprofGating: /debug/pprof must exist only when Options.Pprof is set.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Options{Shards: 1})
	resp, err := off.http().Get(off.url("/debug/pprof/"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without -pprof: %d", resp.StatusCode)
	}

	_, on := newTestServer(t, Options{Shards: 1, Pprof: true})
	resp, err = on.http().Get(on.url("/debug/pprof/"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with -pprof: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index unexpectedly empty:\n%s", body)
	}
}

// TestMetricsHistograms: after a traced sweep, /metrics must expose the
// per-config wall-time and event-rate histograms (with consistent bucket
// cumulative counts) and the peak-queue gauge.
func TestMetricsHistograms(t *testing.T) {
	_, client := newTestServer(t, Options{Shards: 1, Trace: true})
	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, client, st.ID)

	metrics, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	text := string(metrics)
	for _, want := range []string{
		"# TYPE sweepd_sim_wall_seconds histogram",
		`sweepd_sim_wall_seconds_bucket{le="+Inf"} 2`,
		"sweepd_sim_wall_seconds_count 2",
		"# TYPE sweepd_sim_config_events_per_second histogram",
		"sweepd_sim_config_events_per_second_count 2",
		"sweepd_sim_peak_queue_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The tiny spec saturates a 2xBDP FIFO queue, so the peak gauge must be
	// strictly positive.
	if strings.Contains(text, "sweepd_sim_peak_queue_bytes 0\n") {
		t.Error("peak queue gauge stayed 0 across a saturating sweep")
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.observe(v)
	}
	// Buckets: ≤1 gets {0.5, 1}; (1,10] gets {5}; (10,100] gets {50};
	// +Inf gets {500, 5000}.
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if h.counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, h.counts[i], w, h.counts)
		}
	}
	if h.count != 6 || h.sum != 0.5+1+5+50+500+5000 {
		t.Errorf("count=%d sum=%v", h.count, h.sum)
	}
	c := h.clone()
	c.observe(1)
	if h.count != 6 {
		t.Error("clone shares state with the original")
	}
}
