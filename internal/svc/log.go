package svc

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// The package logger: structured slog, swappable at startup by
// ConfigureLogging (sweepd's -log-format flag) and by tests. Stored
// atomically so handlers on live servers read it without coordination.
var pkgLogger atomic.Pointer[slog.Logger]

func init() {
	pkgLogger.Store(slog.New(slog.NewTextHandler(os.Stderr, nil)))
}

// logger returns the current package logger.
func logger() *slog.Logger { return pkgLogger.Load() }

// SetLogger replaces the package logger (tests, embedding callers).
func SetLogger(l *slog.Logger) {
	if l != nil {
		pkgLogger.Store(l)
	}
}

// ConfigureLogging selects the package log encoding: "text" (the default,
// human-oriented key=value lines) or "json" (one JSON object per line, for
// log pipelines). Every svc log line carries structured fields — config
// IDs and science keys, job and worker IDs — whichever encoding is chosen.
func ConfigureLogging(format string, w io.Writer) error {
	if w == nil {
		w = os.Stderr
	}
	switch format {
	case "", "text":
		pkgLogger.Store(slog.New(slog.NewTextHandler(w, nil)))
	case "json":
		pkgLogger.Store(slog.New(slog.NewJSONHandler(w, nil)))
	default:
		return fmt.Errorf("svc: unknown log format %q (want text or json)", format)
	}
	return nil
}
