package svc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// retryPolicy is the shared backoff schedule for idempotent RPCs: the
// client's GETs and every worker→coordinator call (registration, heartbeat,
// lease acquisition, result upload — all of which are safe to repeat:
// uploads are keyed by Config.Key() and deduplicated coordinator-side, so a
// retried upload after a timed-out ACK is a no-op). Each attempt runs under
// its own deadline (PerTry) derived from the caller's context, and attempts
// are spaced by jittered exponential backoff so a thundering herd of
// workers re-contacting a restarted coordinator spreads out instead of
// synchronizing.
type retryPolicy struct {
	// Attempts is the retry budget: total tries, not re-tries (min 1).
	Attempts int
	// Base is the first backoff delay; each subsequent delay doubles.
	Base time.Duration
	// Max caps the backoff delay after doubling.
	Max time.Duration
	// PerTry bounds each individual attempt (0 = no per-attempt deadline
	// beyond the caller's context).
	PerTry time.Duration
}

// defaultRetry is the policy the Client and Worker use unless overridden:
// four attempts over roughly 100ms + 200ms + 400ms of backoff, each attempt
// bounded to 10s.
var defaultRetry = retryPolicy{Attempts: 4, Base: 100 * time.Millisecond, Max: 2 * time.Second, PerTry: 10 * time.Second}

// jitterRand spaces retries; protected by its own lock because retries can
// fire from many worker goroutines at once. Seeded from wall time at init —
// this is operational jitter, never part of simulation science (simulation
// RNGs are engine-seeded and deterministic).
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// jitter returns a uniformly random duration in [d/2, d): full backoff
// magnitude, desynchronized phase.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return d/2 + time.Duration(jitterRand.Int63n(int64(d/2)+1))
}

// worstBackoff returns the policy's maximum total sleep across a full
// retry storm: the sum of the capped exponential delays between attempts
// (jitter only ever shrinks a delay, so this is a true upper bound).
func (rp retryPolicy) worstBackoff() time.Duration {
	attempts := rp.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var total time.Duration
	delay := rp.Base
	for i := 1; i < attempts; i++ {
		d := delay
		if rp.Max > 0 && d > rp.Max {
			d = rp.Max
		}
		total += d
		delay *= 2
	}
	return total
}

// capTotal shrinks the policy until its worst-case total backoff fits the
// budget — first by halving the per-delay cap, then by dropping attempts.
// Workers cap their policy to half the coordinator's lease TTL at
// registration, so a retrying upload can never outlive its own lease and
// hand the config to a second worker while still running.
func (rp retryPolicy) capTotal(budget time.Duration) retryPolicy {
	if budget <= 0 {
		return rp
	}
	if rp.Max <= 0 || rp.Max > budget {
		rp.Max = budget
	}
	for rp.worstBackoff() > budget {
		switch {
		case rp.Max > rp.Base && rp.Max > time.Millisecond:
			rp.Max /= 2
		case rp.Attempts > 1:
			rp.Attempts--
		default:
			return rp
		}
	}
	return rp
}

// retrySleep pauses between attempts; tests swap it to record the
// requested delays and make backoff verification deterministic.
var retrySleep = func(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// retryableStatus reports whether an HTTP status is worth retrying: server
// errors and throttling are transient, client errors are not (a 404 from
// the coordinator means "re-register", which is the caller's decision, not
// a retry's).
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// errNotRetryable wraps an error the retry loop must surface immediately.
type errNotRetryable struct{ err error }

func (e errNotRetryable) Error() string { return e.err.Error() }
func (e errNotRetryable) Unwrap() error { return e.err }

// permanent marks err as not worth retrying (e.g. a 4xx response).
func permanent(err error) error {
	if err == nil {
		return nil
	}
	return errNotRetryable{err}
}

// do runs f under the policy: per-attempt deadline, jittered exponential
// backoff between attempts, and early exit on context cancellation or a
// permanent() error. The last attempt's error is returned annotated with
// the attempt count.
func (rp retryPolicy) do(ctx context.Context, op string, f func(ctx context.Context) error) error {
	attempts := rp.Attempts
	if attempts < 1 {
		attempts = 1
	}
	delay := rp.Base
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := delay
			if rp.Max > 0 && d > rp.Max {
				d = rp.Max
			}
			if serr := retrySleep(ctx, jitter(d)); serr != nil {
				return fmt.Errorf("svc: %s: %w (after %d attempts)", op, serr, i)
			}
			delay *= 2
		}
		attemptCtx := ctx
		var cancel context.CancelFunc
		if rp.PerTry > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, rp.PerTry)
		}
		if ferr := failpoint.InjectCtx("rpc", op); ferr != nil {
			err = ferr // injected transport failure: retried like a real one
		} else {
			err = f(attemptCtx)
		}
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		var perm errNotRetryable
		if errors.As(err, &perm) {
			return perm.err
		}
		if ctx.Err() != nil {
			return fmt.Errorf("svc: %s: %w (after %d attempts)", op, err, i+1)
		}
	}
	return fmt.Errorf("svc: %s: %w (after %d attempts)", op, err, attempts)
}
