package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiment"
)

// testRetry keeps chaos tests fast: two quick attempts instead of the
// production four-with-seconds-of-backoff.
var testRetry = retryPolicy{Attempts: 2, Base: 5 * time.Millisecond, Max: 25 * time.Millisecond, PerTry: 5 * time.Second}

// newClusterServer starts a coordinator-mode server.
func newClusterServer(t *testing.T, cluster ClusterOptions, opts Options) (*Server, *Client, string) {
	t.Helper()
	opts.Cluster = &cluster
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, &Client{Base: hs.URL, HTTP: hs.Client()}, hs.URL
}

// startWorker runs a Worker in the background and returns a drain function
// that cancels it and waits for the graceful goodbye.
func startWorker(t *testing.T, opts WorkerOptions) (drain func()) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	if opts.Retry.Attempts == 0 {
		opts.Retry = testRetry
	}
	w, err := NewWorker(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("worker exited: %v", err)
		}
	}()
	var once sync.Once
	drain = func() {
		once.Do(func() {
			cancel()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Error("worker did not drain in time")
			}
		})
	}
	t.Cleanup(drain)
	return drain
}

// fakeRun is a synthetic simulation for chaos tests that do not grade
// science bytes: instant, deterministic, never errored.
func fakeRun(cfg experiment.Config) experiment.Result {
	return experiment.Result{Config: cfg.Normalize(), Utilization: 0.5, Jain: 1, Flows: 2}
}

// setNow swaps the coordinator's clock (reads happen under mu, so the swap
// is race-free even with the reaper running).
func (c *Coordinator) setNow(f func() time.Time) {
	c.mu.Lock()
	c.now = f
	c.mu.Unlock()
}

func (c *Coordinator) counters() clusterCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c
}

// TestClusterMatchesLocalSweep: the cluster is a distribution strategy, not
// different science — a sweep served by coordinator + workers must be
// byte-identical (modulo wall_ns) to a direct in-process sweep of the same
// spec.
func TestClusterMatchesLocalSweep(t *testing.T) {
	spec := tinySpec()
	cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	local, err := experiment.RunAllOpts(cfgs, experiment.RunAllOptions{Workers: 2, KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := experiment.WriteJSON(&want, &experiment.ResultSet{Note: spec.Note(), Results: local}); err != nil {
		t.Fatal(err)
	}

	_, client, url := newClusterServer(t, ClusterOptions{LeaseTTL: 10 * time.Second}, Options{})
	for i := 0; i < 2; i++ {
		startWorker(t, WorkerOptions{Coordinator: url, Parallel: 2})
	}
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, client, st.ID)
	served, err := client.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripWall(served), stripWall(want.Bytes())) {
		t.Errorf("cluster bytes differ from a local sweep of the same spec.\n--- cluster ---\n%s\n--- local ---\n%s",
			stripWall(served), stripWall(want.Bytes()))
	}
}

// TestClusterWorkerDeathRequeues: a worker that takes a lease and goes
// silent (SIGKILL's in-process twin) must be reaped after the TTL and its
// unfinished configurations re-queued — and a healthy worker then finishes
// the sweep. Nothing already uploaded is re-simulated.
func TestClusterWorkerDeathRequeues(t *testing.T) {
	s, client, url := newClusterServer(t,
		ClusterOptions{LeaseTTL: time.Minute, LeaseBatch: 8}, Options{})
	coord := s.cluster

	// The doomed worker grabs a lease by hand (no heartbeat loop) and
	// uploads exactly one result before "dying".
	reg := coord.register("doomed")
	spec := tinySpec()
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	lr, ok := coord.acquire(reg.WorkerID, 8)
	if !ok || len(lr.Configs) != 2 {
		t.Fatalf("doomed worker leased %d configs (ok=%v), want 2", len(lr.Configs), ok)
	}
	if dup := coord.upload(reg.WorkerID, fakeRun(lr.Configs[0])); dup {
		t.Fatal("first upload flagged duplicate")
	}

	// Silence past the TTL, then reap: the worker is dead, its remaining
	// config re-queued, the uploaded one untouched.
	coord.setNow(func() time.Time { return time.Now().Add(2 * time.Minute) })
	coord.Reap()
	c := coord.counters()
	if c.workersDead != 1 {
		t.Fatalf("workersDead = %d, want 1", c.workersDead)
	}
	if c.configsRequeued != 1 {
		t.Fatalf("configsRequeued = %d, want 1 (the un-uploaded config only)", c.configsRequeued)
	}
	coord.setNow(time.Now)

	// A healthy worker picks up the re-queued config and completes the job.
	var sims atomic.Uint64
	startWorker(t, WorkerOptions{Coordinator: url, Parallel: 1,
		Run: func(cfg experiment.Config) experiment.Result {
			sims.Add(1)
			return fakeRun(cfg)
		}})
	waitDone(t, client, st.ID)
	if got := sims.Load(); got != 1 {
		t.Fatalf("healthy worker simulated %d configs, want exactly the 1 re-queued", got)
	}
	c = coord.counters()
	if c.results != 2 {
		t.Fatalf("results = %d, want 2", c.results)
	}
}

// TestClusterPartitionHealReregisters: a worker partitioned past the TTL is
// reaped; when the partition heals its heartbeat 404s, it re-registers
// under a fresh identity, and the sweep still completes — with re-leased
// configurations served from the worker's local journal, not re-simulated.
func TestClusterPartitionHealReregisters(t *testing.T) {
	s, client, url := newClusterServer(t,
		ClusterOptions{LeaseTTL: 300 * time.Millisecond, Heartbeat: 50 * time.Millisecond, LeaseBatch: 2},
		Options{})
	coord := s.cluster

	var partitioned atomic.Bool
	base := http.DefaultTransport
	hc := &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		if partitioned.Load() {
			return nil, errors.New("injected partition")
		}
		return base.RoundTrip(r)
	})}

	// The worker journals locally, simulates slowly enough for the
	// partition to land mid-lease, and counts its sims.
	var sims atomic.Uint64
	gate := make(chan struct{}, 64)
	startWorker(t, WorkerOptions{
		Coordinator: url,
		Parallel:    1,
		Journal:     filepath.Join(t.TempDir(), "worker.ckpt.jsonl"),
		HTTP:        hc,
		Run: func(cfg experiment.Config) experiment.Result {
			sims.Add(1)
			<-gate // each simulation waits for the test's go-ahead
			return fakeRun(cfg)
		},
	})

	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Let the first simulation start, then partition before it can upload.
	waitFor(t, "first simulation", func() bool { return sims.Load() >= 1 })
	partitioned.Store(true)
	gate <- struct{}{} // finish sim 1; its upload fails into the void

	// The coordinator reaps the silent worker and re-queues the lease.
	waitFor(t, "worker reaped", func() bool { return coord.counters().workersDead >= 1 })

	// Heal. The worker re-registers (heartbeat 404 path) and re-acquires
	// the re-queued work; the config it already simulated comes from its
	// journal, so total sims stays 2 (the grid size), not more.
	partitioned.Store(false)
	close(gate) // all further sims proceed immediately
	waitDone(t, client, st.ID)

	c := coord.counters()
	if c.workersJoined < 2 {
		t.Errorf("workersJoined = %d, want >= 2 (initial + re-register)", c.workersJoined)
	}
	if c.workersDead < 1 {
		t.Errorf("workersDead = %d, want >= 1", c.workersDead)
	}
	if got := sims.Load(); got != 2 {
		t.Errorf("worker simulated %d configs across the partition, want 2 (journal served the re-lease)", got)
	}
}

// roundTripFunc adapts a function to http.RoundTripper.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestClusterStealsFromStraggler: when the pending queue is dry and one
// worker sits on a deep lease, an idle worker must steal the tail half —
// and if the straggler later finishes a stolen config anyway, its upload is
// a duplicate no-op, never a double result.
func TestClusterStealsFromStraggler(t *testing.T) {
	s, client, _ := newClusterServer(t,
		ClusterOptions{LeaseTTL: time.Minute, LeaseBatch: 16}, Options{})
	coord := s.cluster

	spec := tinySpec()
	spec.Seeds = 4 // 2 pairings x 4 seeds = 8 configs
	st, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	slow := coord.register("straggler")
	lr, ok := coord.acquire(slow.WorkerID, 16)
	if !ok || len(lr.Configs) != 8 {
		t.Fatalf("straggler leased %d configs, want all 8", len(lr.Configs))
	}

	fast := coord.register("thief")
	stolen, ok := coord.acquire(fast.WorkerID, 16)
	if !ok || !stolen.Stolen {
		t.Fatalf("idle worker did not steal (ok=%v, resp=%+v)", ok, stolen)
	}
	if len(stolen.Configs) != 4 {
		t.Fatalf("stole %d configs, want the tail half (4)", len(stolen.Configs))
	}
	c := coord.counters()
	if c.leasesStolen != 1 || c.configsStolen != 4 {
		t.Fatalf("steal counters = %d leases / %d configs, want 1/4", c.leasesStolen, c.configsStolen)
	}

	// Both workers race to finish a stolen config: first upload wins, the
	// straggler's late duplicate is absorbed.
	dupCfg := stolen.Configs[0]
	if dup := coord.upload(fast.WorkerID, fakeRun(dupCfg)); dup {
		t.Fatal("thief's upload flagged duplicate")
	}
	if dup := coord.upload(slow.WorkerID, fakeRun(dupCfg)); !dup {
		t.Fatal("straggler's late upload of a stolen config was not flagged duplicate")
	}

	// Finish everything else and check the job completes with one result
	// per config.
	for _, cfg := range stolen.Configs[1:] {
		coord.upload(fast.WorkerID, fakeRun(cfg))
	}
	for _, cfg := range lr.Configs {
		coord.upload(slow.WorkerID, fakeRun(cfg)) // overlaps are duplicates
	}
	waitDone(t, client, st.ID)
	c = coord.counters()
	if c.results != 8 {
		t.Errorf("results = %d, want 8", c.results)
	}
	if c.duplicateResults < 1 {
		t.Errorf("duplicateResults = %d, want >= 1", c.duplicateResults)
	}
}

// TestClusterGracefulReleaseNeverExpires: a worker stopped cleanly must
// hand its unworked lease remainder back immediately (release + goodbye) —
// the expiry path stays untouched, and another worker finishes the sweep
// without waiting out a TTL.
func TestClusterGracefulReleaseNeverExpires(t *testing.T) {
	s, client, url := newClusterServer(t,
		ClusterOptions{LeaseTTL: time.Minute, LeaseBatch: 8}, Options{})
	coord := s.cluster

	var sims atomic.Uint64
	gate := make(chan struct{})
	drain := startWorker(t, WorkerOptions{Coordinator: url, Parallel: 1,
		Run: func(cfg experiment.Config) experiment.Result {
			sims.Add(1)
			<-gate // hold the first simulation so the drain happens mid-lease
			return fakeRun(cfg)
		}})

	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first simulation", func() bool { return sims.Load() >= 1 })

	// Drain the worker mid-lease: the in-flight config finishes and
	// uploads, the unstarted one is released back, and the goodbye
	// deregisters the worker.
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(gate)
	}()
	drain()

	c := coord.counters()
	if c.leasesReleased < 1 {
		t.Fatalf("leasesReleased = %d, want >= 1", c.leasesReleased)
	}
	if c.leasesExpired != 0 {
		t.Fatalf("leasesExpired = %d, want 0 (graceful stop must not expire)", c.leasesExpired)
	}
	if c.configsRequeued < 1 {
		t.Fatalf("configsRequeued = %d, want >= 1 (the released remainder)", c.configsRequeued)
	}
	coord.mu.Lock()
	registered := len(coord.workers)
	coord.mu.Unlock()
	if registered != 0 {
		t.Fatalf("%d workers still registered after goodbye, want 0", registered)
	}

	// A fresh worker picks up the released config; the sweep completes.
	startWorker(t, WorkerOptions{Coordinator: url, Parallel: 1, Run: fakeRun})
	waitDone(t, client, st.ID)
}

// TestClusterUploadIdempotent: the duplicate-absorbing upload path, which
// makes RPC retries after lost ACKs safe, exercised directly.
func TestClusterUploadIdempotent(t *testing.T) {
	s, client, _ := newClusterServer(t, ClusterOptions{LeaseTTL: time.Minute}, Options{})
	coord := s.cluster
	reg := coord.register("w")
	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	lr, _ := coord.acquire(reg.WorkerID, 16)
	res := fakeRun(lr.Configs[0])
	if dup := coord.upload(reg.WorkerID, res); dup {
		t.Fatal("first upload flagged duplicate")
	}
	for i := 0; i < 3; i++ { // retried uploads after a lost ACK
		if dup := coord.upload(reg.WorkerID, res); !dup {
			t.Fatalf("retry %d not flagged duplicate", i+1)
		}
	}
	c := coord.counters()
	if c.results != 1 || c.duplicateResults != 3 {
		t.Fatalf("results/duplicates = %d/%d, want 1/3", c.results, c.duplicateResults)
	}
	// The cached result serves an identical re-submit without any worker.
	for _, cfg := range lr.Configs[1:] {
		coord.upload(reg.WorkerID, fakeRun(cfg))
	}
	waitDone(t, client, st.ID)
}

// heapInuse and buildInfo strip the nondeterministic lines from a fresh
// coordinator's /metrics: the heap gauge measures the machine, and the
// build_info labels carry the Go toolchain version.
var (
	heapInuse = regexp.MustCompile(`(?m)^sweepd_heap_inuse_bytes .*$`)
	buildInfo = regexp.MustCompile(`(?m)^sweepd_build_info\{.*\} 1$`)
)

// TestClusterMetricsGolden pins the coordinator-mode /metrics surface: the
// cluster gauges and counters, with the pool section absent (workers
// simulate; the coordinator has no pool).
func TestClusterMetricsGolden(t *testing.T) {
	_, client, _ := newClusterServer(t, ClusterOptions{}, Options{})
	body, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	got := heapInuse.ReplaceAll(body, []byte("sweepd_heap_inuse_bytes STRIPPED"))
	got = buildInfo.ReplaceAll(got, []byte(`sweepd_build_info{version="STRIPPED",go_version="STRIPPED"} 1`))
	checkGolden(t, "cluster_metrics.golden.txt", got)
}

// TestClusterPoisonConfigQuarantine walks one configuration through the
// full quarantine lifecycle: graceful releases cost nothing, three lease
// failures (worker death) exhaust the default retry budget, the config is
// quarantined as a structured errored Result carrying the failure history,
// and the rest of the grid completes normally — byte-identical science for
// every non-quarantined slot.
func TestClusterPoisonConfigQuarantine(t *testing.T) {
	s, client, _ := newClusterServer(t,
		ClusterOptions{LeaseTTL: time.Minute, LeaseBatch: 8}, Options{})
	coord := s.cluster

	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}

	// Pick the poison: lease the whole grid once, upload everything but the
	// first config, and hand the lease back gracefully.
	reg := coord.register("picker")
	lr, ok := coord.acquire(reg.WorkerID, 8)
	if !ok || len(lr.Configs) != 2 {
		t.Fatalf("leased %d configs (ok=%v), want 2", len(lr.Configs), ok)
	}
	poison := lr.Configs[0]
	poisonID := poison.Normalize().ID()
	healthy := fakeRun(lr.Configs[1])
	if dup := coord.upload(reg.WorkerID, healthy); dup {
		t.Fatal("healthy upload flagged duplicate")
	}
	coord.release(reg.WorkerID, lr.LeaseID, true)

	// Graceful releases never consume retry budget: acquire and release the
	// poison config three more times than the budget allows.
	for i := 0; i < 4; i++ {
		reg := coord.register("polite")
		lr, ok := coord.acquire(reg.WorkerID, 8)
		if !ok || len(lr.Configs) != 1 {
			t.Fatalf("release round %d: leased %d configs, want the 1 poison", i, len(lr.Configs))
		}
		coord.release(reg.WorkerID, lr.LeaseID, true)
	}
	if c := coord.counters(); c.configsQuarantined != 0 {
		t.Fatalf("graceful releases quarantined %d configs, want 0", c.configsQuarantined)
	}

	// Three rounds of a worker taking the poison lease and dying: each
	// round registers at the current (virtual) time, leases, then the clock
	// jumps past the TTL and the reaper declares the worker dead.
	base := time.Now()
	for round := 0; round < 3; round++ {
		now := base.Add(time.Duration(round) * 10 * time.Minute)
		coord.setNow(func() time.Time { return now })
		reg := coord.register("crashy")
		lr, ok := coord.acquire(reg.WorkerID, 8)
		if !ok || len(lr.Configs) != 1 || lr.Configs[0].Key() != poison.Key() {
			t.Fatalf("death round %d: lease = %+v (ok=%v), want the poison config", round, lr, ok)
		}
		later := now.Add(2 * time.Minute)
		coord.setNow(func() time.Time { return later })
		coord.Reap()
	}
	coord.setNow(time.Now)

	c := coord.counters()
	if c.configsQuarantined != 1 {
		t.Fatalf("configsQuarantined = %d, want 1", c.configsQuarantined)
	}
	if c.workersDead != 3 {
		t.Fatalf("workersDead = %d, want 3", c.workersDead)
	}

	// The job completed without any worker ever finishing the poison: the
	// quarantine Result filled its slot.
	final := waitDone(t, client, st.ID)
	if final.Errored != 1 {
		t.Fatalf("Errored = %d, want 1", final.Errored)
	}
	if len(final.Quarantined) != 1 || final.Quarantined[0] != poisonID {
		t.Fatalf("Quarantined = %v, want [%s]", final.Quarantined, poisonID)
	}
	msg := final.Errors[poisonID]
	if !strings.HasPrefix(msg, quarantinedErrPrefix) {
		t.Fatalf("quarantine error %q lacks prefix %q", msg, quarantinedErrPrefix)
	}
	if !strings.Contains(msg, "worker died") || !strings.Contains(msg, "3/3") {
		t.Fatalf("quarantine error %q lacks the failure history", msg)
	}

	// Quarantined results never enter the content-addressed cache.
	if _, ok := s.cache.Get(poison.Key()); ok {
		t.Fatal("quarantined result found in the cache")
	}

	// The healthy slot is real science, untouched by the chaos.
	body, err := client.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var set experiment.ResultSet
	if err := json.Unmarshal(body, &set); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, res := range set.Results {
		if res.Config.Key() != healthy.Config.Key() {
			continue
		}
		found = true
		res.Wall, healthy.Wall = 0, 0
		got, _ := json.Marshal(res)
		want, _ := json.Marshal(healthy)
		if !bytes.Equal(got, want) {
			t.Fatalf("healthy result altered by the chaos:\ngot  %s\nwant %s", got, want)
		}
	}
	if !found {
		t.Fatalf("healthy result missing from the final set:\n%s", body)
	}
}

// TestClusterQuarantineServedAndRequeue: a later request for a quarantined
// key is answered straight from the quarantine record — no lease, no worker
// — unless RequeueQuarantined is set, which clears the record and grants a
// fresh retry budget.
func TestClusterQuarantineServedAndRequeue(t *testing.T) {
	s, client, _ := newClusterServer(t,
		ClusterOptions{LeaseTTL: time.Minute, LeaseBatch: 8, RetryBudget: 1}, Options{})
	coord := s.cluster

	st, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Kill the whole grid once: budget 1 quarantines both configs.
	base := time.Now()
	reg := coord.register("crashy")
	lr, _ := coord.acquire(reg.WorkerID, 8)
	if len(lr.Configs) != 2 {
		t.Fatalf("leased %d configs, want 2", len(lr.Configs))
	}
	coord.setNow(func() time.Time { return base.Add(2 * time.Minute) })
	coord.Reap()
	coord.setNow(time.Now)
	final := waitDone(t, client, st.ID)
	if final.Errored != 2 || len(final.Quarantined) != 2 {
		t.Fatalf("errored/quarantined = %d/%d, want 2/2", final.Errored, len(final.Quarantined))
	}

	// A fresh job asking for a quarantined key is served from the record.
	cfg := lr.Configs[0]
	j2 := newJob("served", experiment.GridSpec{}, []experiment.Config{cfg})
	coord.Enqueue(cfg.Key(), cfg, j2, 0)
	select {
	case <-j2.Finished():
	case <-time.After(5 * time.Second):
		t.Fatal("quarantine-served job did not finish")
	}
	if c := coord.counters(); c.quarantineServed != 1 {
		t.Fatalf("quarantineServed = %d, want 1", c.quarantineServed)
	}
	if st2 := j2.Status(); len(st2.Quarantined) != 1 {
		t.Fatalf("served job Quarantined = %v, want the config", st2.Quarantined)
	}

	// With the override armed, the same request re-opens a real task.
	coord.mu.Lock()
	coord.opts.RequeueQuarantined = true
	coord.mu.Unlock()
	j3 := newJob("requeued", experiment.GridSpec{}, []experiment.Config{cfg})
	coord.Enqueue(cfg.Key(), cfg, j3, 0)
	coord.mu.Lock()
	_, reopened := coord.tasks[cfg.Key()]
	_, stillQuarantined := coord.quarantine[cfg.Key()]
	coord.mu.Unlock()
	if !reopened || stillQuarantined {
		t.Fatalf("requeue override: task reopened=%v quarantine cleared=%v, want true/true", reopened, !stillQuarantined)
	}
	// A worker finishes it this time: full rehabilitation.
	reg2 := coord.register("healthy")
	lr2, _ := coord.acquire(reg2.WorkerID, 8)
	if len(lr2.Configs) != 1 {
		t.Fatalf("rehab lease has %d configs, want 1", len(lr2.Configs))
	}
	coord.upload(reg2.WorkerID, fakeRun(lr2.Configs[0]))
	select {
	case <-j3.Finished():
	case <-time.After(5 * time.Second):
		t.Fatal("rehabilitated job did not finish")
	}
	if st3 := j3.Status(); st3.Errored != 0 {
		t.Fatalf("rehabilitated job errored: %+v", st3)
	}
}
