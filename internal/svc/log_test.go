package svc

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestConfigureLogging pins the -log-format contract: text emits key=value
// lines, json emits one parseable object per line with the structured
// fields intact, and an unknown format is rejected before the daemon
// starts.
func TestConfigureLogging(t *testing.T) {
	defer ConfigureLogging("text", os.Stderr)

	var buf bytes.Buffer
	if err := ConfigureLogging("json", &buf); err != nil {
		t.Fatal(err)
	}
	logger().Warn("journal repaired on boot", "dropped", 3, "path", "/tmp/j")
	line := strings.TrimSpace(buf.String())
	var obj map[string]any
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		t.Fatalf("json format emitted a non-JSON line %q: %v", line, err)
	}
	if obj["msg"] != "journal repaired on boot" || obj["dropped"] != float64(3) {
		t.Fatalf("structured fields lost in json encoding: %v", obj)
	}

	buf.Reset()
	if err := ConfigureLogging("text", &buf); err != nil {
		t.Fatal(err)
	}
	logger().Info("journal recovered, overflow drained", "job", "abc")
	if got := buf.String(); !strings.Contains(got, "job=abc") {
		t.Fatalf("text format lost the structured field: %q", got)
	}

	if err := ConfigureLogging("bogus", &buf); err == nil {
		t.Fatal("unknown log format accepted")
	}
	if err := ConfigureLogging("", &buf); err != nil {
		t.Fatalf("empty format must default to text: %v", err)
	}
}
