package svc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/experiment"
)

// ClusterOptions configure coordinator mode: instead of simulating on a
// local pool, the daemon hands leased batches of configurations to workers
// that registered over HTTP, and survives their failures.
type ClusterOptions struct {
	// LeaseTTL is the failure-detection horizon: a lease not renewed (by a
	// heartbeat or an upload) within this window is taken back, and a
	// worker silent for longer than this is declared dead and its leases
	// re-queued. Default 15s.
	LeaseTTL time.Duration
	// Heartbeat is the interval workers are told to heartbeat at. Default
	// LeaseTTL/5.
	Heartbeat time.Duration
	// LeaseBatch is the maximum configurations per lease. Bigger batches
	// amortize RPCs; smaller ones bound how much work a worker death can
	// strand until re-queue. Default 16.
	LeaseBatch int
	// RetryBudget is how many lease failures (expiry or worker death —
	// never a graceful release) a single configuration may cause before it
	// is quarantined as a structured errored Result instead of re-leased.
	// A poison config that deterministically kills its worker would
	// otherwise crash-loop the cluster forever. Default 3.
	RetryBudget int
	// RequeueQuarantined clears a configuration's quarantine record when a
	// sweep requests it again, granting a fresh retry budget — the
	// operator's override after fixing whatever killed the workers.
	RequeueQuarantined bool
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.LeaseTTL / 5
	}
	if o.LeaseBatch <= 0 {
		o.LeaseBatch = 16
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 3
	}
	return o
}

// clusterCounters are the coordinator's /metrics counters. All mutation
// happens under Coordinator.mu.
type clusterCounters struct {
	workersJoined      uint64 // registrations (including re-registrations)
	workersDead        uint64 // workers reaped for missing heartbeats
	heartbeats         uint64
	leasesGranted      uint64
	leasesExpired      uint64 // leases taken back on deadline
	leasesReleased     uint64 // leases handed back by a draining worker
	leasesStolen       uint64 // steal events (tail of a straggler's lease)
	configsLeased      uint64 // configurations granted across all leases
	configsRequeued    uint64 // configurations moved leased→pending (expiry, death, release)
	configsStolen      uint64 // configurations moved between live leases
	results            uint64 // unique accepted uploads
	duplicateResults   uint64 // idempotent re-uploads (retries, stolen double-runs)
	configsQuarantined uint64 // configurations that exhausted their retry budget
	quarantineServed   uint64 // enqueues answered straight from the quarantine record
}

// Coordinator is the cluster brain sweepd runs with -coordinator: it owns
// the task table, the worker registry, and the lease state machine, and it
// feeds results into the same content-addressed cache and job machinery the
// single-process pool does — so a cluster sweep is byte-identical to a solo
// one. Crash tolerance is lease-based: every grant carries a deadline,
// heartbeats and uploads renew it, and a reaper re-queues whatever dead or
// silent workers were holding. Uploads are idempotent by Config.Key(), so
// retries and stolen double-executions cost a counter bump, never a wrong
// or duplicated result.
type Coordinator struct {
	opts  ClusterOptions
	cache *Cache

	mu      sync.Mutex
	workers map[string]*clusterWorker
	tasks   map[string]*clusterTask
	pending []*clusterTask // FIFO, lazily compacted (entries may have left taskPending)
	leases  map[string]*lease
	ring    hashRing
	nextID  uint64 // worker and lease ID sequence
	closed  bool
	c       clusterCounters

	// quarantine holds the poison configs: keys that exhausted their retry
	// budget, with the errored Result every current and future waiter gets.
	// Quarantined results are never cached — a -requeue-quarantined restart
	// (or RequeueQuarantined here) must be able to re-run them.
	quarantine map[string]*quarantineRecord

	// now is injectable for deterministic expiry tests.
	now func() time.Time

	reapStop chan struct{}
	reapDone chan struct{}
}

// NewCoordinator starts a coordinator over the shared result cache and
// begins reaping expired leases and dead workers in the background.
func NewCoordinator(opts ClusterOptions, cache *Cache) *Coordinator {
	c := &Coordinator{
		opts:       opts.withDefaults(),
		cache:      cache,
		workers:    make(map[string]*clusterWorker),
		tasks:      make(map[string]*clusterTask),
		leases:     make(map[string]*lease),
		quarantine: make(map[string]*quarantineRecord),
		now:        time.Now,
		reapStop:   make(chan struct{}),
		reapDone:   make(chan struct{}),
	}
	go c.reapLoop()
	return c
}

// reapLoop periodically sweeps for dead workers and expired leases. The
// period is a quarter of the TTL so detection latency stays well under one
// extra TTL.
func (c *Coordinator) reapLoop() {
	defer close(c.reapDone)
	tick := time.NewTicker(c.opts.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.reapStop:
			return
		case <-tick.C:
			c.Reap()
		}
	}
}

// Reap takes back every expired lease and every lease held by a worker
// whose heartbeats stopped, moving their unfinished configurations back to
// pending — unless a configuration has now burned through its retry
// budget, in which case it is quarantined and its waiters get the errored
// Result. It is called from the background loop and directly by tests.
func (c *Coordinator) Reap() {
	c.mu.Lock()
	now := c.now()
	var quarantined []*clusterTask
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.opts.LeaseTTL {
			for _, l := range w.leases {
				quarantined = append(quarantined, c.requeueLeaseLocked(l, "worker died")...)
			}
			delete(c.workers, id)
			c.ring.remove(id)
			c.c.workersDead++
		}
	}
	for _, l := range c.leases {
		if now.After(l.deadline) {
			quarantined = append(quarantined, c.requeueLeaseLocked(l, "lease expired")...)
			c.c.leasesExpired++
		}
	}
	c.mu.Unlock()
	c.deliverQuarantined(quarantined)
}

// requeueCauseRelease marks the graceful path: a draining worker handing
// work back is not a failure and never consumes retry budget.
const requeueCauseRelease = ""

// requeueLeaseLocked returns a lease's unfinished tasks to the pending
// queue and drops the lease. Tasks whose result already arrived (taskDone)
// are gone from remaining and unaffected. A non-empty cause records a
// failure against each task; tasks that exhaust the retry budget are
// quarantined instead of re-queued and returned for delivery after the
// lock is dropped (their waiters must be answered without holding mu).
func (c *Coordinator) requeueLeaseLocked(l *lease, cause string) (quarantined []*clusterTask) {
	workerName := l.worker
	if w, ok := c.workers[l.worker]; ok && w.name != "" {
		workerName = w.name
	}
	for _, t := range l.remaining {
		if t.state == taskLeased && t.lease == l {
			t.state = taskPending
			t.lease = nil
			if cause != requeueCauseRelease {
				t.failures++
				t.failLog = append(t.failLog, fmt.Sprintf("%s (worker %s, lease %s, failure %d/%d)",
					cause, workerName, l.id, t.failures, c.opts.RetryBudget))
				if t.failures >= c.opts.RetryBudget {
					c.quarantineTaskLocked(t)
					quarantined = append(quarantined, t)
					continue
				}
			}
			c.pending = append(c.pending, t)
			c.c.configsRequeued++
		}
	}
	l.remaining = map[string]*clusterTask{}
	delete(c.leases, l.id)
	if w, ok := c.workers[l.worker]; ok {
		delete(w.leases, l.id)
	}
	return quarantined
}

// quarantinedErrPrefix is the stable marker on every quarantine Result's
// error string; Job.Status uses it to report quarantined config IDs.
const quarantinedErrPrefix = "sweepd: quarantined"

// quarantineRecord is one poison config: the failure history and the
// structured errored Result served to every waiter, current and future.
type quarantineRecord struct {
	cfg      experiment.Config
	failures int
	failLog  []string
	res      experiment.Result
}

// quarantineTaskLocked retires a task that exhausted its retry budget: it
// leaves the task table for good, its waiters are answered (by the caller,
// after unlock) with an errored Result carrying the full failure history —
// the coordinator-side flight record of which workers died holding it —
// and future Enqueues of the same key are served from the record.
func (c *Coordinator) quarantineTaskLocked(t *clusterTask) {
	t.state = taskDone
	delete(c.tasks, t.key)
	rec := &quarantineRecord{
		cfg:      t.cfg,
		failures: t.failures,
		failLog:  t.failLog,
		res: experiment.Result{
			Config: t.cfg.Normalize(),
			Error: fmt.Sprintf("%s: %d lease failures exhausted the retry budget: %s",
				quarantinedErrPrefix, t.failures, strings.Join(t.failLog, "; ")),
		},
	}
	c.quarantine[t.key] = rec
	c.c.configsQuarantined++
	logger().Warn("config quarantined as poison",
		"config_id", t.cfg.ID(),
		"config_key", t.key,
		"failures", t.failures,
		"fail_log", strings.Join(t.failLog, "; "))
}

// deliverQuarantined answers the waiters of freshly quarantined tasks.
// Must be called without holding mu (deliver runs job callbacks).
func (c *Coordinator) deliverQuarantined(tasks []*clusterTask) {
	for _, t := range tasks {
		res := c.quarantine[t.key].res
		ws := t.waiters
		t.waiters = nil
		for _, w := range ws {
			w.job.deliver(w.idx, res, false)
		}
	}
}

// Enqueue schedules a configuration for the job's slot idx, coalescing onto
// an existing task for the same science key. Like Pool.Do, it re-checks the
// cache under the coordinator lock before opening a new task, so a result
// uploaded between the server's cache miss and this call is served, not
// re-simulated.
func (c *Coordinator) Enqueue(key string, cfg experiment.Config, j *Job, idx int) {
	c.mu.Lock()
	if t, ok := c.tasks[key]; ok {
		t.waiters = append(t.waiters, waiter{j, idx})
		c.mu.Unlock()
		return
	}
	if rec, ok := c.quarantine[key]; ok {
		if c.opts.RequeueQuarantined {
			// Operator override: forget the record and fall through to open
			// a fresh task with a full retry budget.
			delete(c.quarantine, key)
		} else {
			res := rec.res
			c.c.quarantineServed++
			c.mu.Unlock()
			j.deliver(idx, res, false)
			return
		}
	}
	if res, ok := c.cache.peek(key); ok {
		c.mu.Unlock()
		j.deliver(idx, res, true)
		return
	}
	if c.closed {
		c.mu.Unlock()
		j.deliver(idx, experiment.Result{Config: cfg.Normalize(),
			Error: "sweepd: coordinator shutting down; configuration was not scheduled"}, false)
		return
	}
	t := &clusterTask{key: key, cfg: cfg, state: taskPending, waiters: []waiter{{j, idx}}}
	c.tasks[key] = t
	c.pending = append(c.pending, t)
	c.mu.Unlock()
}

// ReleaseJob withdraws a cancelled job's interest in the given config keys.
// Pending tasks nobody else wants are dropped unrun; leased tasks keep
// running on their workers (the upload lands in the cache for the future)
// with only this job's waiters removed.
func (c *Coordinator) ReleaseJob(j *Job, keys []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range keys {
		t, ok := c.tasks[key]
		if !ok {
			continue
		}
		kept := t.waiters[:0]
		for _, w := range t.waiters {
			if w.job != j {
				kept = append(kept, w)
			}
		}
		t.waiters = kept
		if len(t.waiters) == 0 && t.state == taskPending {
			t.state = taskDone // lazily skipped when the pending queue is scanned
			delete(c.tasks, key)
		}
	}
}

// register admits a worker (or re-admits one that was reaped during a
// partition) and tells it the cluster's heartbeat and lease parameters.
func (c *Coordinator) register(name string) registerResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := fmt.Sprintf("w%d", c.nextID)
	if name == "" {
		name = id
	}
	c.workers[id] = &clusterWorker{id: id, name: name, lastSeen: c.now(), leases: make(map[string]*lease)}
	c.ring.add(id)
	c.c.workersJoined++
	return registerResponse{
		WorkerID:    id,
		HeartbeatNS: int64(c.opts.Heartbeat),
		LeaseTTLNS:  int64(c.opts.LeaseTTL),
		LeaseBatch:  c.opts.LeaseBatch,
	}
}

// heartbeat renews a worker's liveness and every lease it holds. Unknown
// workers (reaped during a partition, or a coordinator restart) get false —
// the worker must re-register, and its old leases are already re-queued.
func (c *Coordinator) heartbeat(workerID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return false
	}
	now := c.now()
	w.lastSeen = now
	for _, l := range w.leases {
		l.deadline = now.Add(c.opts.LeaseTTL)
	}
	c.c.heartbeats++
	return true
}

// acquire grants a worker a lease over up to max pending configurations,
// preferring the shard the consistent-hash ring assigns it, falling back to
// any pending work (an idle worker beats shard affinity), and finally
// stealing the tail of the largest outstanding lease when the queue is
// empty — so one straggling worker cannot pin the sweep's completion to its
// own pace.
func (c *Coordinator) acquire(workerID string, max int) (leaseResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return leaseResponse{}, false
	}
	now := c.now()
	w.lastSeen = now
	if max <= 0 || max > c.opts.LeaseBatch {
		max = c.opts.LeaseBatch
	}

	var grant []*clusterTask
	stolen := false
	// Pass 1: this worker's shard. Pass 2: anything pending.
	for pass := 0; pass < 2 && len(grant) < max; pass++ {
		kept := c.pending[:0]
		for _, t := range c.pending {
			if t.state != taskPending { // lazily dropped (done, cancelled, or re-granted)
				continue
			}
			if len(grant) < max && (pass == 1 || c.ring.owner(t.key) == workerID) {
				grant = append(grant, t)
				t.state = taskLeased // claimed; attached to the lease below
				continue
			}
			kept = append(kept, t)
		}
		c.pending = kept
	}
	if len(grant) == 0 {
		// Queue is dry: steal the tail of the straggler holding the most
		// unfinished work, if there is enough of it to share.
		var victim *lease
		for _, l := range c.leases {
			if l.worker == workerID || len(l.remaining) < 2 {
				continue
			}
			if victim == nil || len(l.remaining) > len(victim.remaining) {
				victim = l
			}
		}
		if victim != nil {
			for _, t := range victim.tail(len(victim.remaining) / 2) {
				delete(victim.remaining, t.key)
				grant = append(grant, t)
			}
			stolen = true
			c.c.leasesStolen++
			c.c.configsStolen += uint64(len(grant))
		}
	}
	if len(grant) == 0 {
		return leaseResponse{RetryAfterNS: int64(c.opts.Heartbeat)}, true
	}

	c.nextID++
	l := &lease{
		id:        fmt.Sprintf("%s-l%d", workerID, c.nextID),
		worker:    workerID,
		deadline:  now.Add(c.opts.LeaseTTL),
		remaining: make(map[string]*clusterTask, len(grant)),
	}
	resp := leaseResponse{LeaseID: l.id, DeadlineNS: l.deadline.UnixNano(), Stolen: stolen}
	for _, t := range grant {
		t.state = taskLeased
		t.lease = l
		l.keys = append(l.keys, t.key)
		l.remaining[t.key] = t
		resp.Configs = append(resp.Configs, t.cfg)
	}
	c.leases[l.id] = l
	w.leases[l.id] = l
	c.c.leasesGranted++
	c.c.configsLeased += uint64(len(grant))
	return resp, true
}

// upload accepts one result. The first upload for a science key completes
// the task — cache insertion happens under the coordinator lock, before the
// task leaves the table, so Enqueue's second-chance lookup can never miss
// both — and any later upload of the same key (an RPC retry after a lost
// ACK, or a stolen config its original worker finished anyway) is
// acknowledged as a duplicate no-op. Results are accepted regardless of the
// uploader's registration state: a worker reaped during a partition still
// carries valid science.
func (c *Coordinator) upload(workerID string, res experiment.Result) (duplicate bool) {
	key := res.Config.Key()
	c.mu.Lock()
	now := c.now()
	if w, ok := c.workers[workerID]; ok {
		w.lastSeen = now
	}
	t, ok := c.tasks[key]
	if !ok || t.state == taskDone {
		c.c.duplicateResults++
		c.mu.Unlock()
		return true
	}
	t.state = taskDone
	if l := t.lease; l != nil {
		delete(l.remaining, key)
		l.deadline = now.Add(c.opts.LeaseTTL) // progress renews the lease
		if len(l.remaining) == 0 {
			delete(c.leases, l.id)
			if w, ok := c.workers[l.worker]; ok {
				delete(w.leases, l.id)
			}
		}
	}
	delete(c.tasks, key)
	ws := t.waiters
	t.waiters = nil
	c.c.results++
	if err := c.cache.Put(res); err != nil {
		// Journal failures must not corrupt science (same policy as the
		// pool): the result still reaches its waiters, the cache entry
		// stays memory-only.
		logger().Error("cluster journal append failed",
			"err", err,
			"worker_id", workerID,
			"config_id", res.Config.ID(),
			"config_key", res.Config.Key())
	}
	c.mu.Unlock()
	for _, w := range ws {
		w.job.deliver(w.idx, res, false)
	}
	return false
}

// release hands a draining worker's unfinished lease work back immediately
// — the graceful path that never waits out a TTL. An empty leaseID with bye
// set releases everything the worker holds and deregisters it.
func (c *Coordinator) release(workerID, leaseID string, bye bool) (requeued int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return 0
	}
	before := c.c.configsRequeued
	if leaseID != "" {
		if l, ok := w.leases[leaseID]; ok {
			c.requeueLeaseLocked(l, requeueCauseRelease)
			c.c.leasesReleased++
		}
	}
	if bye {
		for _, l := range w.leases {
			c.requeueLeaseLocked(l, requeueCauseRelease)
			c.c.leasesReleased++
		}
		delete(c.workers, workerID)
		c.ring.remove(workerID)
	}
	return int(c.c.configsRequeued - before)
}

// Close stops the reaper and fails every outstanding task so its jobs
// complete (errored) instead of waiting for workers that will never be
// answered.
func (c *Coordinator) Close() {
	close(c.reapStop)
	<-c.reapDone
	c.mu.Lock()
	c.closed = true
	tasks := make([]*clusterTask, 0, len(c.tasks))
	for _, t := range c.tasks {
		tasks = append(tasks, t)
	}
	c.tasks = make(map[string]*clusterTask)
	c.pending = nil
	c.leases = make(map[string]*lease)
	c.mu.Unlock()
	for _, t := range tasks {
		res := experiment.Result{Config: t.cfg.Normalize(),
			Error: "sweepd: coordinator shutting down; configuration was not run"}
		for _, w := range t.waiters {
			w.job.deliver(w.idx, res, false)
		}
	}
}

// clusterSnapshot gathers the coordinator gauges and counters for /metrics.
type clusterSnapshot struct {
	workers, leasesActive, pendingConfigs, leasedConfigs, quarantined int
	c                                                                 clusterCounters
}

func (c *Coordinator) snapshot() clusterSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := clusterSnapshot{workers: len(c.workers), leasesActive: len(c.leases),
		quarantined: len(c.quarantine), c: c.c}
	for _, t := range c.pending {
		if t.state == taskPending {
			s.pendingConfigs++
		}
	}
	for _, l := range c.leases {
		s.leasedConfigs += len(l.remaining)
	}
	return s
}

// Cluster wire types. Durations travel as int64 nanoseconds, matching the
// _ns convention of every other wire struct in the repo.
type registerRequest struct {
	Name string `json:"name,omitempty"`
}

type registerResponse struct {
	WorkerID    string `json:"worker_id"`
	HeartbeatNS int64  `json:"heartbeat_ns"`
	LeaseTTLNS  int64  `json:"lease_ttl_ns"`
	LeaseBatch  int    `json:"lease_batch"`
}

type leaseRequest struct {
	Max int `json:"max,omitempty"`
}

type leaseResponse struct {
	LeaseID string `json:"lease_id,omitempty"`
	// Configs is the leased batch; empty means no work right now, retry
	// after RetryAfterNS.
	Configs      []experiment.Config `json:"configs,omitempty"`
	DeadlineNS   int64               `json:"deadline_unix_ns,omitempty"`
	Stolen       bool                `json:"stolen,omitempty"`
	RetryAfterNS int64               `json:"retry_after_ns,omitempty"`
}

type uploadRequest struct {
	LeaseID string            `json:"lease_id,omitempty"`
	Result  experiment.Result `json:"result"`
}

type uploadResponse struct {
	Duplicate bool `json:"duplicate"`
}

type releaseRequest struct {
	LeaseID string `json:"lease_id,omitempty"`
	// Bye releases every lease the worker holds and deregisters it — the
	// graceful shutdown goodbye.
	Bye bool `json:"bye,omitempty"`
}

type releaseResponse struct {
	Requeued int `json:"requeued"`
}

// Cluster HTTP handlers, mounted by Server.Handler in coordinator mode.

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad register body: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, c.register(req.Name))
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !c.heartbeat(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, "unknown worker %q (re-register)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad lease body: %v", err)
		return
	}
	resp, ok := c.acquire(r.PathValue("id"), req.Max)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown worker %q (re-register)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req uploadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad upload body: %v", err)
		return
	}
	dup := c.upload(r.PathValue("id"), req.Result)
	writeJSON(w, http.StatusOK, uploadResponse{Duplicate: dup})
}

func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad release body: %v", err)
		return
	}
	n := c.release(r.PathValue("id"), req.LeaseID, req.Bye)
	writeJSON(w, http.StatusOK, releaseResponse{Requeued: n})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
