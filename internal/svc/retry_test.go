package svc

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/failpoint"
)

func TestWorstBackoff(t *testing.T) {
	cases := []struct {
		rp   retryPolicy
		want time.Duration
	}{
		{retryPolicy{Attempts: 1, Base: time.Second}, 0},
		{retryPolicy{Attempts: 4, Base: 100 * time.Millisecond, Max: 2 * time.Second}, 700 * time.Millisecond},
		{retryPolicy{Attempts: 4, Base: 100 * time.Millisecond, Max: 150 * time.Millisecond}, 400 * time.Millisecond},
		{retryPolicy{Attempts: 3, Base: time.Second}, 3 * time.Second}, // uncapped: 1s + 2s
	}
	for _, c := range cases {
		if got := c.rp.worstBackoff(); got != c.want {
			t.Errorf("worstBackoff(%+v) = %v, want %v", c.rp, got, c.want)
		}
	}
}

func TestCapTotalFitsBudget(t *testing.T) {
	for _, budget := range []time.Duration{time.Millisecond, 10 * time.Millisecond,
		100 * time.Millisecond, time.Second, 7500 * time.Millisecond} {
		rp := defaultRetry.capTotal(budget)
		if got := rp.worstBackoff(); got > budget {
			t.Errorf("capTotal(%v): worstBackoff = %v, exceeds budget", budget, got)
		}
		if rp.Attempts < 1 {
			t.Errorf("capTotal(%v): Attempts = %d, want >= 1", budget, rp.Attempts)
		}
	}
	// A policy already inside the budget is untouched.
	if got := defaultRetry.capTotal(time.Hour); got != defaultRetry {
		t.Errorf("capTotal(1h) altered an in-budget policy: %+v", got)
	}
}

// TestDefaultRetryUnderDefaultLeaseTTL pins the invariant the cluster
// depends on: a full retry storm under the default policy backs off for
// less than the default lease TTL, so a retrying worker cannot outlive its
// own lease even before registration caps the policy.
func TestDefaultRetryUnderDefaultLeaseTTL(t *testing.T) {
	ttl := ClusterOptions{}.withDefaults().LeaseTTL
	if wb := defaultRetry.worstBackoff(); wb >= ttl {
		t.Fatalf("defaultRetry worst-case backoff %v >= default lease TTL %v", wb, ttl)
	}
}

// TestRetryStormBackoffBoundedAndJittered drives the shared retry loop
// through a full injected 5xx-style storm (every attempt fails via the rpc
// failpoint) and verifies each recorded sleep is the jittered exponential
// schedule — within [d/2, d] of the capped ideal delay — and that the total
// stays under half the lease TTL after capTotal.
func TestRetryStormBackoffBoundedAndJittered(t *testing.T) {
	var mu sync.Mutex
	var delays []time.Duration
	old := retrySleep
	retrySleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		delays = append(delays, d)
		mu.Unlock()
		return nil
	}
	defer func() { retrySleep = old }()
	if err := failpoint.Enable("rpc=err(injected storm)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()

	ttl := ClusterOptions{}.withDefaults().LeaseTTL
	rp := defaultRetry.capTotal(ttl / 2)
	err := rp.do(context.Background(), "upload", func(ctx context.Context) error {
		t.Fatal("f ran during a total storm")
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "injected storm") {
		t.Fatalf("storm error = %v, want the injected failure", err)
	}
	if len(delays) != rp.Attempts-1 {
		t.Fatalf("recorded %d backoff sleeps, want %d (attempts-1)", len(delays), rp.Attempts-1)
	}
	var total, ideal time.Duration
	next := rp.Base
	for i, d := range delays {
		want := next
		if rp.Max > 0 && want > rp.Max {
			want = rp.Max
		}
		if d < want/2 || d > want {
			t.Errorf("sleep %d = %v outside jitter bounds [%v, %v]", i, d, want/2, want)
		}
		total += d
		ideal += want
		next *= 2
	}
	if wb := rp.worstBackoff(); ideal != wb {
		t.Errorf("schedule sums to %v, want worstBackoff %v", ideal, wb)
	}
	if total > ttl/2 {
		t.Errorf("total backoff %v exceeds half the lease TTL %v", total, ttl/2)
	}
}

// TestRetryFailpointMatchesOpName: the rpc failpoint's arg filter selects
// individual operations, so chaos runs can storm uploads while heartbeats
// stay healthy.
func TestRetryFailpointMatchesOpName(t *testing.T) {
	if err := failpoint.Enable("rpc=err(upload down)@arg=upload"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	rp := retryPolicy{Attempts: 1}
	if err := rp.do(context.Background(), "heartbeat", func(ctx context.Context) error { return nil }); err != nil {
		t.Fatalf("heartbeat hit the upload-only failpoint: %v", err)
	}
	err := rp.do(context.Background(), "upload", func(ctx context.Context) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "upload down") {
		t.Fatalf("upload err = %v, want the injected failure", err)
	}
}

// TestWorkerRegistrationCapsRetry: registering against a coordinator with a
// short lease TTL must shrink the worker's retry policy until a full storm
// fits inside half the TTL.
func TestWorkerRegistrationCapsRetry(t *testing.T) {
	ttl := 800 * time.Millisecond
	_, _, url := newClusterServer(t, ClusterOptions{LeaseTTL: ttl}, Options{})
	w, err := NewWorker(WorkerOptions{Coordinator: url, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if wb := w.policy().worstBackoff(); wb <= ttl/2 {
		t.Fatalf("precondition: default policy backoff %v already fits %v; test proves nothing", wb, ttl/2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.register(ctx); err != nil {
		t.Fatal(err)
	}
	if wb := w.policy().worstBackoff(); wb > ttl/2 {
		t.Errorf("post-registration worst-case backoff %v exceeds half the lease TTL (%v)", wb, ttl/2)
	}
}
