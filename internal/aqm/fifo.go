package aqm

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// FIFO is the tail-drop queue: packets are accepted until the byte limit is
// reached, then dropped. It is the paper's baseline AQM and the only one
// that lets CCAs fill the whole buffer.
type FIFO struct {
	ring  pktRing
	bytes units.ByteSize
	cap   units.ByteSize
	stats Stats
	trc   *telemetry.PortTracer
}

// SetTrace implements TraceSink.
func (q *FIFO) SetTrace(t *telemetry.PortTracer) { q.trc = t }

// NewFIFO returns a tail-drop queue holding at most capacity bytes.
func NewFIFO(capacity units.ByteSize) *FIFO {
	if capacity <= 0 {
		capacity = 1 // degenerate but non-blocking
	}
	return &FIFO{cap: capacity}
}

// Name implements Queue.
func (q *FIFO) Name() string { return string(KindFIFO) }

// Capacity implements Queue.
func (q *FIFO) Capacity() units.ByteSize { return q.cap }

// Len implements Queue.
func (q *FIFO) Len() int { return q.ring.len() }

// Bytes implements Queue.
func (q *FIFO) Bytes() units.ByteSize { return q.bytes }

// Stats implements Queue.
func (q *FIFO) Stats() Stats { return q.stats }

// Enqueue implements Queue: tail drop when the byte limit would be exceeded.
func (q *FIFO) Enqueue(now sim.Time, p *packet.Packet) bool {
	if q.bytes+p.Size > q.cap {
		q.stats.Dropped++
		q.stats.DroppedBytes += p.Size
		if q.trc != nil {
			q.trc.Drop(int64(now), uint32(p.Flow), telemetry.DropTail, int64(p.Size), int64(q.bytes))
		}
		packet.Release(p)
		return false
	}
	p.EnqueueAt = now
	q.ring.push(p)
	q.bytes += p.Size
	q.stats.Enqueued++
	return true
}

// Dequeue implements Queue.
func (q *FIFO) Dequeue(now sim.Time) *packet.Packet {
	p := q.ring.pop()
	if p == nil {
		return nil
	}
	q.bytes -= p.Size
	q.stats.Dequeued++
	return p
}

// SelfCheck implements SelfChecker.
func (q *FIFO) SelfCheck() error {
	var sum units.ByteSize
	q.ring.forEach(func(p *packet.Packet) { sum += p.Size })
	if sum != q.bytes {
		return fmt.Errorf("fifo: queued packets sum to %d bytes but occupancy says %d", sum, q.bytes)
	}
	if q.bytes < 0 || q.bytes > q.cap {
		return fmt.Errorf("fifo: occupancy %d outside [0, %d]", q.bytes, q.cap)
	}
	if q.stats.Enqueued != q.stats.Dequeued+uint64(q.ring.len()) {
		return fmt.Errorf("fifo: accepted-packet imbalance: enqueued=%d != dequeued=%d + queued=%d",
			q.stats.Enqueued, q.stats.Dequeued, q.ring.len())
	}
	return nil
}

// pktRing is a growable circular buffer of packets; it avoids the per-element
// allocation of container/list in the hottest path of the simulator.
type pktRing struct {
	buf  []*packet.Packet
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

func (r *pktRing) push(p *packet.Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *pktRing) pop() *packet.Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

func (r *pktRing) peek() *packet.Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// forEach visits every queued packet head-to-tail without mutating the ring.
func (r *pktRing) forEach(fn func(*packet.Packet)) {
	for i := 0; i < r.n; i++ {
		fn(r.buf[(r.head+i)%len(r.buf)])
	}
}

func (r *pktRing) grow() {
	newCap := len(r.buf) * 2
	if newCap == 0 {
		newCap = 16
	}
	nb := make([]*packet.Packet, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
}
