package aqm

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestREDDefaults(t *testing.T) {
	q := NewRED(120_000, false, REDParams{})
	p := q.Params()
	if p.MaxTh != 30_000 {
		t.Errorf("MaxTh = %d, want limit/4", p.MaxTh)
	}
	if p.MinTh != 10_000 {
		t.Errorf("MinTh = %d, want MaxTh/3", p.MinTh)
	}
	if p.MaxP != 0.02 || p.Wq != 0.002 {
		t.Errorf("MaxP/Wq defaults wrong: %+v", p)
	}
}

func TestREDNoDropsBelowMinTh(t *testing.T) {
	q := NewRED(1_000_000, false, REDParams{})
	// Keep the instantaneous queue tiny: enqueue+dequeue alternately.
	for i := 0; i < 1000; i++ {
		if !q.Enqueue(sim.Time(i), mkData(1, 1000)) {
			t.Fatalf("drop below MinTh at %d (avg=%.0f)", i, q.AvgQueue())
		}
		packet.Release(q.Dequeue(sim.Time(i)))
	}
	if q.Stats().Dropped != 0 {
		t.Fatalf("dropped %d below MinTh", q.Stats().Dropped)
	}
}

func TestREDDropsAboveMaxTh(t *testing.T) {
	q := NewRED(100_000, false, REDParams{DisableGentle: true})
	// Fill without draining: avg climbs past MaxTh and forced drops begin.
	drops := 0
	for i := 0; i < 5000; i++ {
		if !q.Enqueue(sim.Time(i), mkData(1, 1000)) {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("no drops despite sustained overload")
	}
	if q.Bytes() > q.Capacity() {
		t.Fatal("occupancy exceeds capacity")
	}
}

func TestREDDropProbMonotone(t *testing.T) {
	// Property: dropProb is nondecreasing in the average queue estimate.
	q := NewRED(1_000_000, false, REDParams{})
	f := func(a, b uint32) bool {
		x, y := float64(a%2_000_000), float64(b%2_000_000)
		if x > y {
			x, y = y, x
		}
		q.avg = x
		px := q.dropProb()
		q.avg = y
		py := q.dropProb()
		return px <= py && px >= 0 && py <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestREDGentleRamp(t *testing.T) {
	q := NewRED(1_200_000, false, REDParams{})
	p := q.Params()
	q.avg = float64(p.MaxTh) * 1.5
	prob := q.dropProb()
	if prob <= p.MaxP || prob >= 1 {
		t.Errorf("gentle region prob = %.3f, want in (MaxP, 1)", prob)
	}
	q.avg = float64(p.MaxTh) * 2.1
	if q.dropProb() != 1 {
		t.Error("above 2·MaxTh everything must drop")
	}
}

func TestREDClassicCliff(t *testing.T) {
	q := NewRED(1_200_000, false, REDParams{DisableGentle: true})
	p := q.Params()
	q.avg = float64(p.MaxTh) + 1
	if q.dropProb() != 1 {
		t.Error("classic RED drops everything at MaxTh")
	}
}

func TestREDIdleDecay(t *testing.T) {
	q := NewRED(1_000_000, false, REDParams{MeanPktTime: 100 * time.Microsecond})
	// Build up an average.
	for i := 0; i < 200; i++ {
		q.Enqueue(0, mkData(1, 2000))
	}
	for q.Len() > 0 {
		packet.Release(q.Dequeue(sim.Time(1000)))
	}
	before := q.AvgQueue()
	if before <= 0 {
		t.Skip("no average accumulated")
	}
	// A long idle period then one arrival: avg should have decayed.
	q.Enqueue(sim.Duration(5*time.Second), mkData(1, 2000))
	if q.AvgQueue() >= before {
		t.Errorf("avg did not decay across idle: before=%.1f after=%.1f", before, q.AvgQueue())
	}
}

func TestREDECNMarksInsteadOfDrops(t *testing.T) {
	mk := func(ecn bool) (drops, marks uint64) {
		q := NewRED(200_000, ecn, REDParams{Seed: 7})
		for i := 0; i < 3000; i++ {
			p := mkData(1, 1000)
			p.ECN = packet.ECT0
			q.Enqueue(sim.Time(i), p)
			if i%2 == 0 { // drain slowly so avg sits between thresholds
				if d := q.Dequeue(sim.Time(i)); d != nil {
					packet.Release(d)
				}
			}
		}
		s := q.Stats()
		return s.Dropped, s.Marked
	}
	_, marksOff := mk(false)
	dropsOn, marksOn := mk(true)
	if marksOff != 0 {
		t.Error("ECN disabled must not mark")
	}
	if marksOn == 0 {
		t.Error("ECN enabled should mark ECT packets in the early-drop band")
	}
	_ = dropsOn
}

func TestREDDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) uint64 {
		q := NewRED(150_000, false, REDParams{Seed: seed})
		for i := 0; i < 4000; i++ {
			q.Enqueue(sim.Time(i), mkData(1, 1000))
			if i%2 == 0 {
				if p := q.Dequeue(sim.Time(i)); p != nil {
					packet.Release(p)
				}
			}
		}
		return q.Stats().Dropped
	}
	if run(3) != run(3) {
		t.Error("same seed must reproduce drops exactly")
	}
}

func TestREDNeverExceedsCapacity(t *testing.T) {
	f := func(sizes []uint16) bool {
		q := NewRED(20_000, false, REDParams{Seed: 1})
		for i, s := range sizes {
			q.Enqueue(sim.Time(i), mkData(1, units.ByteSize(s%3000)+100))
			if q.Bytes() > q.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkREDEnqueueDequeue(b *testing.B) {
	q := NewRED(1<<30, false, REDParams{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(sim.Time(i), mkData(1, 8960))
		if p := q.Dequeue(sim.Time(i)); p != nil {
			packet.Release(p)
		}
	}
}
