package aqm

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// CoDel is the standalone single-queue Controlled Delay discipline
// (RFC 8289, Linux sch_codel): a tail-drop buffer whose dequeue side runs
// the CoDel sojourn-time drop law. It is not part of the paper's grid
// (the paper evaluates FIFO, RED and FQ-CoDel) but completes the AQM set
// for validation runs and isolates the control law from the fair-queuing
// layer for ablation.
type CoDel struct {
	ring  pktRing
	bytes units.ByteSize
	cap   units.ByteSize
	stats Stats
	ctl   codelState

	// doorDrops counts tail drops at the full buffer, a subset of
	// stats.Dropped. CoDel shares FIFO/RED door semantics (rejected packets
	// are not Enqueued) while also dropping post-acceptance at dequeue, so
	// the split is needed to state the accepted-packet balance:
	// Enqueued = Dequeued + (Dropped - doorDrops) + Len.
	doorDrops uint64

	trc *telemetry.PortTracer
}

// SetTrace implements TraceSink: the door drops and the control law's
// dequeue drops share the port's trace ring.
func (q *CoDel) SetTrace(t *telemetry.PortTracer) {
	q.trc = t
	q.ctl.trc = t
}

// NewCoDel returns a standalone CoDel queue holding at most capacity bytes.
func NewCoDel(capacity units.ByteSize, ecn bool, p CoDelParams) *CoDel {
	if capacity <= 0 {
		capacity = 1
	}
	p.defaults()
	if ecn {
		p.ECN = true
	}
	return &CoDel{cap: capacity, ctl: codelState{p: p}}
}

// Name implements Queue.
func (q *CoDel) Name() string { return string(KindCoDel) }

// Capacity implements Queue.
func (q *CoDel) Capacity() units.ByteSize { return q.cap }

// Len implements Queue.
func (q *CoDel) Len() int { return q.ring.len() }

// Bytes implements Queue.
func (q *CoDel) Bytes() units.ByteSize { return q.bytes }

// Stats implements Queue.
func (q *CoDel) Stats() Stats { return q.stats }

// Enqueue implements Queue: tail drop when the byte limit would be
// exceeded, otherwise accept — all AQM intelligence runs at dequeue.
func (q *CoDel) Enqueue(now sim.Time, p *packet.Packet) bool {
	if q.bytes+p.Size > q.cap {
		q.stats.Dropped++
		q.stats.DroppedBytes += p.Size
		q.doorDrops++
		if q.trc != nil {
			q.trc.Drop(int64(now), uint32(p.Flow), telemetry.DropOverlimit, int64(p.Size), int64(q.bytes))
		}
		packet.Release(p)
		return false
	}
	p.EnqueueAt = now
	q.ring.push(p)
	q.bytes += p.Size
	q.stats.Enqueued++
	return true
}

// pop implements codelSource.
func (q *CoDel) pop() *packet.Packet {
	p := q.ring.pop()
	if p != nil {
		q.bytes -= p.Size
	}
	return p
}

// backlog implements codelSource.
func (q *CoDel) backlog() int64 { return int64(q.bytes) }

// Dequeue implements Queue: the RFC 8289 control law decides whether the
// head packet (and possibly its successors) is transmitted, marked or
// dropped based on how long it sat in the queue.
func (q *CoDel) Dequeue(now sim.Time) *packet.Packet {
	p := q.ctl.dequeue(now, q, &q.stats)
	if p != nil {
		q.stats.Dequeued++
	}
	return p
}

// SelfCheck implements SelfChecker.
func (q *CoDel) SelfCheck() error {
	var sum units.ByteSize
	q.ring.forEach(func(p *packet.Packet) { sum += p.Size })
	if sum != q.bytes {
		return fmt.Errorf("codel: queued packets sum to %d bytes but occupancy says %d", sum, q.bytes)
	}
	if q.bytes < 0 || q.bytes > q.cap {
		return fmt.Errorf("codel: occupancy %d outside [0, %d]", q.bytes, q.cap)
	}
	if q.doorDrops > q.stats.Dropped {
		return fmt.Errorf("codel: doorDrops=%d exceeds total Dropped=%d", q.doorDrops, q.stats.Dropped)
	}
	codelDrops := q.stats.Dropped - q.doorDrops
	if q.stats.Enqueued != q.stats.Dequeued+codelDrops+uint64(q.ring.len()) {
		return fmt.Errorf("codel: accepted-packet imbalance: enqueued=%d != dequeued=%d + codel-dropped=%d + queued=%d",
			q.stats.Enqueued, q.stats.Dequeued, codelDrops, q.ring.len())
	}
	return nil
}
