package aqm

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// codelHarness drives a codelState over a plain ring, the way FQ-CoDel's
// per-flow queues do.
type codelHarness struct {
	ring  pktRing
	bytes int64
	st    codelState
	stats Stats
}

func newCodelHarness(p CoDelParams) *codelHarness {
	p.defaults()
	return &codelHarness{st: codelState{p: p}}
}

func (h *codelHarness) enqueue(now sim.Time, size int64) {
	p := packet.New()
	p.Kind = packet.Data
	p.Size = 8960
	p.EnqueueAt = now
	h.ring.push(p)
	h.bytes += int64(p.Size)
	_ = size
}

// pop and backlog implement codelSource over the harness ring.
func (h *codelHarness) pop() *packet.Packet {
	p := h.ring.pop()
	if p != nil {
		h.bytes -= int64(p.Size)
	}
	return p
}

func (h *codelHarness) backlog() int64 { return h.bytes }

func (h *codelHarness) dequeue(now sim.Time) *packet.Packet {
	return h.st.dequeue(now, h, &h.stats)
}

func TestCoDelDefaults(t *testing.T) {
	var p CoDelParams
	p.defaults()
	if p.Target != 5*time.Millisecond || p.Interval != 100*time.Millisecond {
		t.Fatalf("defaults: %+v", p)
	}
}

func TestCoDelNoDropBelowTarget(t *testing.T) {
	h := newCodelHarness(CoDelParams{})
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		h.enqueue(now, 8960)
		now += sim.Duration(time.Millisecond) // 1ms sojourn < 5ms target
		p := h.dequeue(now)
		if p == nil {
			t.Fatal("expected packet")
		}
		packet.Release(p)
	}
	if h.stats.Dropped != 0 {
		t.Fatalf("dropped %d below target", h.stats.Dropped)
	}
}

func TestCoDelTransientSpikeForgiven(t *testing.T) {
	// Sojourn above target for less than one interval must not drop.
	h := newCodelHarness(CoDelParams{})
	now := sim.Duration(time.Second)
	// 5 packets with 20ms sojourn, spread over 50ms (< 100ms interval),
	// then back to low sojourn.
	for i := 0; i < 5; i++ {
		h.enqueue(now-sim.Duration(20*time.Millisecond), 8960)
		p := h.dequeue(now)
		if p == nil {
			t.Fatal("expected packet")
		}
		packet.Release(p)
		now += sim.Duration(10 * time.Millisecond)
	}
	if h.stats.Dropped != 0 {
		t.Fatalf("transient spike dropped %d", h.stats.Dropped)
	}
}

func TestCoDelPersistentDelayDrops(t *testing.T) {
	h := newCodelHarness(CoDelParams{})
	now := sim.Duration(time.Second)
	// Sustained 50ms sojourn for well over an interval.
	drops := uint64(0)
	for i := 0; i < 300; i++ {
		h.enqueue(now-sim.Duration(50*time.Millisecond), 8960)
		h.enqueue(now-sim.Duration(50*time.Millisecond), 8960) // keep backlog
		p := h.dequeue(now)
		if p != nil {
			packet.Release(p)
		}
		now += sim.Duration(5 * time.Millisecond)
		drops = h.stats.Dropped
	}
	if drops == 0 {
		t.Fatal("persistent delay never triggered the drop law")
	}
}

func TestCoDelControlLawAccelerates(t *testing.T) {
	// drop intervals shrink as 1/sqrt(count).
	st := codelState{p: CoDelParams{Interval: 100 * time.Millisecond, Target: 5 * time.Millisecond}}
	st.count = 1
	t1 := st.controlLaw(0)
	st.count = 4
	t4 := st.controlLaw(0)
	st.count = 16
	t16 := st.controlLaw(0)
	if t4 != t1/2 || t16 != t1/4 {
		t.Fatalf("control law: %v %v %v", t1, t4, t16)
	}
}

func TestCoDelEmptiesCleanly(t *testing.T) {
	h := newCodelHarness(CoDelParams{})
	if p := h.dequeue(0); p != nil {
		t.Fatal("dequeue on empty should be nil")
	}
	if h.st.dropping {
		t.Fatal("empty queue must exit dropping state")
	}
}
