package aqm

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func mkData(flow packet.FlowID, size units.ByteSize) *packet.Packet {
	p := packet.New()
	p.Kind = packet.Data
	p.Flow = flow
	p.Size = size
	return p
}

func TestFIFOBasicOrder(t *testing.T) {
	q := NewFIFO(100_000)
	for i := 0; i < 5; i++ {
		p := mkData(packet.FlowID(i), 1000)
		p.Seq = int64(i)
		if !q.Enqueue(0, p) {
			t.Fatalf("enqueue %d dropped", i)
		}
	}
	if q.Len() != 5 || q.Bytes() != 5000 {
		t.Fatalf("len=%d bytes=%d", q.Len(), q.Bytes())
	}
	for i := 0; i < 5; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("dequeue %d got %v", i, p)
		}
		packet.Release(p)
	}
	if q.Dequeue(0) != nil {
		t.Fatal("empty queue should return nil")
	}
}

func TestFIFOTailDrop(t *testing.T) {
	q := NewFIFO(2500)
	if !q.Enqueue(0, mkData(1, 1000)) || !q.Enqueue(0, mkData(1, 1000)) {
		t.Fatal("first two should fit")
	}
	if q.Enqueue(0, mkData(1, 1000)) {
		t.Fatal("third should be tail-dropped")
	}
	s := q.Stats()
	if s.Dropped != 1 || s.Enqueued != 2 || s.DroppedBytes != 1000 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFIFONeverExceedsCapacity(t *testing.T) {
	// Property: under any arrival/departure pattern, occupancy <= capacity.
	f := func(ops []uint8) bool {
		q := NewFIFO(10_000)
		for _, op := range ops {
			if op%3 == 0 {
				p := q.Dequeue(0)
				if p != nil {
					packet.Release(p)
				}
			} else {
				q.Enqueue(0, mkData(1, units.ByteSize(op%50)*100+100))
			}
			if q.Bytes() > q.Capacity() {
				return false
			}
			if q.Bytes() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFIFOConservation(t *testing.T) {
	// enqueued = dequeued + still queued, drops accounted separately.
	q := NewFIFO(50_000)
	enq := 0
	for i := 0; i < 100; i++ {
		if q.Enqueue(0, mkData(1, 1000)) {
			enq++
		}
		if i%3 == 0 {
			if p := q.Dequeue(0); p != nil {
				packet.Release(p)
			}
		}
	}
	s := q.Stats()
	if int(s.Enqueued) != enq {
		t.Fatalf("enqueued %d vs %d", s.Enqueued, enq)
	}
	if int(s.Dequeued)+q.Len() != enq {
		t.Fatalf("conservation: deq %d + len %d != enq %d", s.Dequeued, q.Len(), enq)
	}
}

func TestRingGrowth(t *testing.T) {
	var r pktRing
	const n = 1000
	for i := 0; i < n; i++ {
		p := packet.New()
		p.Seq = int64(i)
		r.push(p)
	}
	// Interleave pops and pushes to exercise wraparound.
	for i := 0; i < 500; i++ {
		p := r.pop()
		if p.Seq != int64(i) {
			t.Fatalf("pop %d got %d", i, p.Seq)
		}
		packet.Release(p)
	}
	for i := 0; i < 500; i++ {
		p := packet.New()
		p.Seq = int64(n + i)
		r.push(p)
	}
	for i := 500; i < n+500; i++ {
		p := r.pop()
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("pop %d got %v", i, p)
		}
		packet.Release(p)
	}
	if r.pop() != nil || r.len() != 0 {
		t.Fatal("ring should be empty")
	}
}

func TestRingPeek(t *testing.T) {
	var r pktRing
	if r.peek() != nil {
		t.Fatal("peek on empty should be nil")
	}
	p := packet.New()
	p.Seq = 42
	r.push(p)
	if got := r.peek(); got == nil || got.Seq != 42 {
		t.Fatalf("peek got %v", got)
	}
	if r.len() != 1 {
		t.Fatal("peek must not consume")
	}
	packet.Release(r.pop())
}

func TestFIFOEnqueueTimestamps(t *testing.T) {
	q := NewFIFO(10_000)
	now := sim.Time(12345)
	q.Enqueue(now, mkData(1, 500))
	p := q.Dequeue(now + 10)
	if p.EnqueueAt != now {
		t.Errorf("EnqueueAt = %d, want %d", p.EnqueueAt, now)
	}
	packet.Release(p)
}

func BenchmarkFIFOEnqueueDequeue(b *testing.B) {
	q := NewFIFO(1 << 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(sim.Time(i), mkData(1, 8960))
		packet.Release(q.Dequeue(sim.Time(i)))
	}
}
