package aqm

import (
	"fmt"
	"math"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// REDParams are the Random Early Detection knobs. Zero values pick the
// Linux tc-red style defaults derived from the byte limit:
//
//	MaxTh  = limit/4
//	MinTh  = MaxTh/3
//	MaxP   = 0.02
//	Wq     = 0.002
//	Gentle = true (drop probability ramps from MaxP at MaxTh to 1 at 2·MaxTh)
type REDParams struct {
	MinTh units.ByteSize
	MaxTh units.ByteSize
	MaxP  float64
	Wq    float64
	// DisableGentle switches off the gentle ramp above MaxTh, reverting to
	// the classic 1993 law (drop everything once avg ≥ MaxTh).
	DisableGentle bool
	// MeanPktTime is the typical transmission time of one packet on the
	// egress link, used for the idle-period decay of the average queue.
	// The router sets this from the link rate; defaults to 1µs.
	MeanPktTime time.Duration
	// Seed decorrelates the drop lottery between replicas.
	Seed uint64
}

// RED implements Random Early Detection (Floyd & Jacobson 1993): it tracks
// an exponentially weighted moving average of the queue length in bytes and
// drops arriving packets with a probability that rises linearly between a
// minimum and maximum threshold — before the buffer is full. This is the
// discipline the paper finds starves CUBIC when BBR shares the link and
// fails to fill high-bandwidth pipes.
type RED struct {
	ring  pktRing
	bytes units.ByteSize
	cap   units.ByteSize
	stats Stats

	p   REDParams
	ecn bool
	rng *sim.RNG
	trc *telemetry.PortTracer

	avg       float64  // EWMA queue size, bytes
	count     int      // packets since last drop/mark while in [minth,maxth)
	emptyAt   sim.Time // when the queue last went empty (-1 = not empty)
	everQueue bool
}

// NewRED returns a RED queue with the given byte limit.
func NewRED(capacity units.ByteSize, ecn bool, p REDParams) *RED {
	if capacity <= 0 {
		capacity = 1
	}
	if p.MaxTh <= 0 {
		p.MaxTh = capacity / 4
	}
	if p.MinTh <= 0 {
		p.MinTh = p.MaxTh / 3
	}
	if p.MinTh < 1 {
		p.MinTh = 1
	}
	if p.MaxTh <= p.MinTh {
		p.MaxTh = p.MinTh + 1
	}
	if p.MaxP <= 0 {
		p.MaxP = 0.02
	}
	if p.Wq <= 0 {
		p.Wq = 0.002
	}
	if p.MeanPktTime <= 0 {
		p.MeanPktTime = time.Microsecond
	}
	return &RED{
		cap:     capacity,
		p:       p,
		ecn:     ecn,
		rng:     sim.NewRNG(p.Seed ^ 0x5ed0_5a17_ca11_ab1e),
		emptyAt: 0,
	}
}

// Name implements Queue.
func (q *RED) Name() string { return string(KindRED) }

// Capacity implements Queue.
func (q *RED) Capacity() units.ByteSize { return q.cap }

// Len implements Queue.
func (q *RED) Len() int { return q.ring.len() }

// Bytes implements Queue.
func (q *RED) Bytes() units.ByteSize { return q.bytes }

// Stats implements Queue.
func (q *RED) Stats() Stats { return q.stats }

// AvgQueue exposes the EWMA queue estimate (for tests and telemetry).
func (q *RED) AvgQueue() float64 { return q.avg }

// SetTrace implements TraceSink.
func (q *RED) SetTrace(t *telemetry.PortTracer) { q.trc = t }

// Params returns the resolved parameter set.
func (q *RED) Params() REDParams { return q.p }

// updateAvg advances the EWMA, decaying it across idle periods as the
// original paper prescribes (avg ← (1-wq)^m · avg with m idle packet-times).
func (q *RED) updateAvg(now sim.Time) {
	if q.ring.len() == 0 && q.everQueue {
		idle := now - q.emptyAt
		if idle > 0 {
			m := float64(idle) / float64(q.p.MeanPktTime.Nanoseconds())
			q.avg *= math.Pow(1-q.p.Wq, m)
		}
		return
	}
	q.avg = (1-q.p.Wq)*q.avg + q.p.Wq*float64(q.bytes)
}

// dropProb returns the early-drop probability for the current average.
func (q *RED) dropProb() float64 {
	minTh, maxTh := float64(q.p.MinTh), float64(q.p.MaxTh)
	switch {
	case q.avg < minTh:
		return 0
	case q.avg < maxTh:
		return q.p.MaxP * (q.avg - minTh) / (maxTh - minTh)
	case !q.p.DisableGentle && q.avg < 2*maxTh:
		return q.p.MaxP + (1-q.p.MaxP)*(q.avg-maxTh)/maxTh
	default:
		return 1
	}
}

// Enqueue implements Queue with the RED early-drop law.
func (q *RED) Enqueue(now sim.Time, p *packet.Packet) bool {
	q.updateAvg(now)

	drop := false
	mark := false
	reason := telemetry.DropREDEarly
	pb := q.dropProb()
	switch {
	case pb >= 1:
		drop = true
		reason = telemetry.DropREDForced
		q.count = 0
	case pb > 0:
		// Spread drops: pa = pb / (1 - count·pb), Floyd & Jacobson §4.
		pa := pb / (1 - math.Min(float64(q.count)*pb, 0.9999))
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if q.rng.Float64() < pa {
			if q.ecn && p.ECN == packet.ECT0 || q.ecn && p.ECN == packet.ECT1 {
				mark = true
			} else {
				drop = true
			}
			q.count = 0
		} else {
			q.count++
		}
	default:
		q.count = 0
	}

	if !drop && q.bytes+p.Size > q.cap {
		drop = true // hard limit, like the physical buffer overflowing
		reason = telemetry.DropTail
	}
	if drop {
		q.stats.Dropped++
		q.stats.DroppedBytes += p.Size
		if q.trc != nil {
			q.trc.Drop(int64(now), uint32(p.Flow), reason, int64(p.Size), int64(q.bytes))
		}
		packet.Release(p)
		return false
	}
	if mark {
		p.ECN = packet.CE
		q.stats.Marked++
		if q.trc != nil {
			q.trc.Mark(int64(now), uint32(p.Flow), telemetry.MarkRED, int64(p.Size), int64(q.bytes))
		}
	}
	p.EnqueueAt = now
	q.ring.push(p)
	q.bytes += p.Size
	q.stats.Enqueued++
	q.everQueue = true
	return true
}

// Dequeue implements Queue.
func (q *RED) Dequeue(now sim.Time) *packet.Packet {
	p := q.ring.pop()
	if p == nil {
		return nil
	}
	q.bytes -= p.Size
	q.stats.Dequeued++
	if q.ring.len() == 0 {
		q.emptyAt = now
	}
	return p
}

// SelfCheck implements SelfChecker.
func (q *RED) SelfCheck() error {
	var sum units.ByteSize
	q.ring.forEach(func(p *packet.Packet) { sum += p.Size })
	if sum != q.bytes {
		return fmt.Errorf("red: queued packets sum to %d bytes but occupancy says %d", sum, q.bytes)
	}
	if q.bytes < 0 || q.bytes > q.cap {
		return fmt.Errorf("red: occupancy %d outside [0, %d]", q.bytes, q.cap)
	}
	if q.stats.Enqueued != q.stats.Dequeued+uint64(q.ring.len()) {
		return fmt.Errorf("red: accepted-packet imbalance: enqueued=%d != dequeued=%d + queued=%d",
			q.stats.Enqueued, q.stats.Dequeued, q.ring.len())
	}
	if math.IsNaN(q.avg) || math.IsInf(q.avg, 0) || q.avg < 0 {
		return fmt.Errorf("red: EWMA queue estimate is %v", q.avg)
	}
	return nil
}
