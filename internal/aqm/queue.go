// Package aqm implements the three active-queue-management disciplines the
// paper evaluates on the bottleneck router — FIFO (tail drop), RED (Floyd &
// Jacobson 1993, with Linux-style "gentle" mode), and FQ-CoDel (RFC 8290 on
// top of the RFC 8289 CoDel control law) — behind a common Queue interface
// the router port drains.
package aqm

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Queue is a router egress queue. Enqueue may drop (returning false) or mark
// ECN; Dequeue may also drop internally (CoDel) and returns nil when empty.
// Implementations are not safe for concurrent use: one simulation goroutine
// owns the whole network.
type Queue interface {
	// Enqueue offers p to the queue at time now. It returns false if the
	// packet was dropped; the queue releases dropped packets itself.
	Enqueue(now sim.Time, p *packet.Packet) bool
	// Dequeue removes the next packet to transmit, or nil if empty.
	Dequeue(now sim.Time) *packet.Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the queued byte count.
	Bytes() units.ByteSize
	// Capacity returns the configured byte limit.
	Capacity() units.ByteSize
	// Stats returns cumulative counters.
	Stats() Stats
	// Name identifies the discipline ("fifo", "red", "fq_codel").
	Name() string
}

// SelfChecker is the optional deep-validation surface a discipline exposes
// to the audit layer. SelfCheck walks the discipline's internal structures
// (rings, flow lists, EWMA state) and returns a non-nil error when any
// internal invariant is broken: negative or capacity-exceeding occupancy,
// byte totals that disagree with the queued packets, counters that do not
// balance (offered = dequeued + dropped + queued), or scheduler-list
// corruption. It is deliberately O(queue length) — the caller (the audited
// router port) invokes it periodically, not per packet.
//
// The interface lives here, not in the audit package, so aqm keeps zero
// repo-internal dependencies and any discipline can be validated without an
// import cycle.
type SelfChecker interface {
	SelfCheck() error
}

// TraceSink is the optional telemetry surface a discipline implements to
// report its drops and ECN marks — with the per-discipline reason (tail
// overflow, RED early vs forced, CoDel control law, fat-flow eviction) —
// into the owning port's trace ring. The traced router port installs its
// PortTracer here at construction; a discipline without one (or with a nil
// tracer) emits nothing. Like SelfChecker, the interface lives in this
// package so aqm depends only on the telemetry leaf and no cycle forms.
type TraceSink interface {
	SetTrace(*telemetry.PortTracer)
}

// Stats are cumulative counters every discipline maintains.
type Stats struct {
	Enqueued uint64 // packets accepted
	Dequeued uint64 // packets handed to the link
	Dropped  uint64 // packets dropped (at enqueue or dequeue)
	Marked   uint64 // packets ECN-marked instead of dropped
	// DroppedBytes counts bytes lost to drops.
	DroppedBytes units.ByteSize
}

// DropRate returns drops / offered packets, in [0,1].
func (s Stats) DropRate() float64 {
	offered := s.Enqueued + s.Dropped
	if offered == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(offered)
}

// Kind names a queue discipline for configuration and reporting.
type Kind string

// The paper's three AQMs, plus standalone CoDel (single queue, RFC 8289
// law without the fair-queuing layer) for validation and ablation runs.
const (
	KindFIFO    Kind = "fifo"
	KindRED     Kind = "red"
	KindFQCoDel Kind = "fq_codel"
	KindCoDel   Kind = "codel"
)

// Kinds returns the paper's AQM set in presentation order. Standalone CoDel
// is available by name but is not part of the paper's measurement grid.
func Kinds() []Kind { return []Kind{KindFIFO, KindRED, KindFQCoDel} }

// ParseKind validates a discipline name.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case KindFIFO, KindRED, KindFQCoDel, KindCoDel:
		return Kind(s), nil
	}
	return "", fmt.Errorf("aqm: unknown discipline %q (want fifo, red, fq_codel or codel)", s)
}

// Config carries the knobs shared by all disciplines plus per-discipline
// parameter overrides (zero values select the defaults documented on each
// constructor).
type Config struct {
	Kind     Kind
	Capacity units.ByteSize // byte limit (the paper's N × BDP)
	ECN      bool           // mark ECT packets instead of dropping where the law allows

	RED     REDParams
	FQCoDel FQCoDelParams
	CoDel   CoDelParams
}

// New constructs the configured discipline.
func New(cfg Config) (Queue, error) {
	switch cfg.Kind {
	case KindFIFO, "":
		return NewFIFO(cfg.Capacity), nil
	case KindRED:
		return NewRED(cfg.Capacity, cfg.ECN, cfg.RED), nil
	case KindFQCoDel:
		return NewFQCoDel(cfg.Capacity, cfg.ECN, cfg.FQCoDel), nil
	case KindCoDel:
		return NewCoDel(cfg.Capacity, cfg.ECN, cfg.CoDel), nil
	}
	return nil, fmt.Errorf("aqm: unknown discipline %q", cfg.Kind)
}
