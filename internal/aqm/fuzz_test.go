package aqm

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// FuzzAQMQueueOps drives every discipline with an arbitrary interleaving of
// enqueues (varying sizes and flow IDs), dequeues, idle gaps, and ECN — the
// byte stream is the op schedule. After every operation the universal queue
// invariants must hold (occupancy within [0, capacity], offered = dequeued +
// dropped + queued) and the discipline's own SelfCheck must pass; after a
// full drain the books must close exactly.
func FuzzAQMQueueOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 2, 2, 2, 2})
	f.Add([]byte{1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15})
	f.Add([]byte("enqueue a lot then drain and check the books"))
	burst := make([]byte, 256)
	for i := range burst {
		burst[i] = byte(i * 7) // mixed ops, sizes and flows
	}
	f.Add(burst)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, kind := range []Kind{KindFIFO, KindRED, KindCoDel, KindFQCoDel} {
			for _, ecn := range []bool{false, true} {
				fuzzQueueStream(t, kind, ecn, data)
			}
		}
	})
}

func fuzzQueueStream(t *testing.T, kind Kind, ecn bool, data []byte) {
	t.Helper()
	q, err := New(Config{
		Kind:     kind,
		Capacity: 30_000,
		ECN:      ecn,
		RED:      REDParams{Seed: 42},
		FQCoDel:  FQCoDelParams{Perturb: 42, Flows: 16}, // few buckets: force flow collisions
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := q.(SelfChecker)
	now := sim.Time(0)
	var offered uint64

	checkOp := func(op string) {
		if b := q.Bytes(); b < 0 || b > q.Capacity() {
			t.Fatalf("%s/%v after %s: occupancy %d outside [0, %d] (input %x)",
				kind, ecn, op, b, q.Capacity(), data)
		}
		if q.Len() < 0 {
			t.Fatalf("%s/%v after %s: negative length %d", kind, ecn, op, q.Len())
		}
		st := q.Stats()
		if acc := st.Dequeued + st.Dropped + uint64(q.Len()); offered != acc {
			t.Fatalf("%s/%v after %s: offered=%d != dequeued=%d + dropped=%d + queued=%d (input %x)",
				kind, ecn, op, offered, st.Dequeued, st.Dropped, q.Len(), data)
		}
		if err := sc.SelfCheck(); err != nil {
			t.Fatalf("%s/%v after %s: %v (input %x)", kind, ecn, op, err, data)
		}
	}

	for _, b := range data {
		// Time advances with the stream so CoDel's sojourn law engages on
		// slow-drain patterns and stays dormant on fast ones.
		now += sim.Time(b) * sim.Time(50_000) // up to 12.75 ms per op
		switch b % 3 {
		case 0, 1: // enqueue, two-thirds of ops: queues must saturate
			p := packet.New()
			p.Kind = packet.Data
			p.Flow = packet.FlowID(b >> 3)
			p.Size = units.ByteSize(64 + int(b)*23)
			if ecn {
				p.ECN = packet.ECT0
			}
			offered++
			q.Enqueue(now, p)
			checkOp("enqueue")
		case 2:
			if p := q.Dequeue(now); p != nil {
				packet.Release(p)
			}
			checkOp("dequeue")
		}
	}

	// Drain and close the books: every packet ever offered is now either
	// dequeued or dropped, and the empty queue holds zero bytes.
	for {
		p := q.Dequeue(now)
		if p == nil {
			break
		}
		packet.Release(p)
		now += sim.Time(10_000)
		checkOp("drain")
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Fatalf("%s/%v drained to len=%d bytes=%d", kind, ecn, q.Len(), q.Bytes())
	}
	st := q.Stats()
	if st.Dequeued+st.Dropped != offered {
		t.Fatalf("%s/%v final books: dequeued=%d + dropped=%d != offered=%d",
			kind, ecn, st.Dequeued, st.Dropped, offered)
	}
	if err := sc.SelfCheck(); err != nil {
		t.Fatalf("%s/%v after drain: %v", kind, ecn, err)
	}
}
