package aqm

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestFQCoDelDefaults(t *testing.T) {
	q := NewFQCoDel(1_000_000, false, FQCoDelParams{})
	if q.p.Flows != 1024 || q.p.Quantum != 8960 {
		t.Fatalf("defaults: %+v", q.p)
	}
	if q.p.CoDel.Target != 5*time.Millisecond || q.p.CoDel.Interval != 100*time.Millisecond {
		t.Fatalf("codel defaults: %+v", q.p.CoDel)
	}
}

func TestFQCoDelSingleFlowFIFOOrder(t *testing.T) {
	q := NewFQCoDel(1_000_000, false, FQCoDelParams{})
	for i := 0; i < 10; i++ {
		p := mkData(7, 1000)
		p.Seq = int64(i)
		q.Enqueue(0, p)
	}
	for i := 0; i < 10; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("out of order at %d: %v", i, p)
		}
		packet.Release(p)
	}
}

func TestFQCoDelRoundRobinFairness(t *testing.T) {
	// Two backlogged flows with equal packet sizes must be served ~1:1
	// regardless of how unequal their backlogs are.
	q := NewFQCoDel(100_000_000, false, FQCoDelParams{})
	for i := 0; i < 900; i++ {
		q.Enqueue(0, mkData(1, 8960))
	}
	for i := 0; i < 100; i++ {
		q.Enqueue(0, mkData(2, 8960))
	}
	served := map[packet.FlowID]int{}
	for i := 0; i < 200; i++ {
		p := q.Dequeue(0)
		if p == nil {
			break
		}
		served[p.Flow]++
		packet.Release(p)
	}
	if served[2] < 90 {
		t.Fatalf("thin flow starved: served %v", served)
	}
}

func TestFQCoDelDRRWeightsBySize(t *testing.T) {
	// Flow 1 sends jumbo packets (8960B), flow 2 small ones (1120B). DRR in
	// bytes should give each flow ~equal bytes, i.e. ~8 small per 1 jumbo.
	q := NewFQCoDel(100_000_000, false, FQCoDelParams{})
	for i := 0; i < 500; i++ {
		q.Enqueue(0, mkData(1, 8960))
		for j := 0; j < 8; j++ {
			q.Enqueue(0, mkData(2, 1120))
		}
	}
	bytes := map[packet.FlowID]int64{}
	for i := 0; i < 1000; i++ {
		p := q.Dequeue(0)
		if p == nil {
			break
		}
		bytes[p.Flow] += int64(p.Size)
		packet.Release(p)
	}
	ratio := float64(bytes[1]) / float64(bytes[2])
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("byte shares not ~equal: %v (ratio %.2f)", bytes, ratio)
	}
}

func TestFQCoDelOverLimitDropsFromFattest(t *testing.T) {
	q := NewFQCoDel(100_000, false, FQCoDelParams{})
	// Flow 1 is fat, flow 2 thin.
	for i := 0; i < 11; i++ {
		q.Enqueue(0, mkData(1, 8960))
	}
	q.Enqueue(0, mkData(2, 1000))
	// Push it over the 100 KB limit; the victim must come from flow 1.
	q.Enqueue(0, mkData(1, 8960))
	if q.Bytes() > q.Capacity() {
		t.Fatalf("still over limit: %d > %d", q.Bytes(), q.Capacity())
	}
	if q.Stats().Dropped == 0 {
		t.Fatal("expected an over-limit drop")
	}
	// The thin flow's packet must still be there: drain and look for it.
	seen2 := false
	for {
		p := q.Dequeue(0)
		if p == nil {
			break
		}
		if p.Flow == 2 {
			seen2 = true
		}
		packet.Release(p)
	}
	if !seen2 {
		t.Fatal("thin flow's packet was evicted; fat-flow eviction broken")
	}
}

func TestFQCoDelSojournDropping(t *testing.T) {
	// Packets that sat in the queue far longer than target for more than
	// an interval must start being dropped by CoDel.
	q := NewFQCoDel(100_000_000, false, FQCoDelParams{})
	e := sim.Time(0)
	for i := 0; i < 2000; i++ {
		q.Enqueue(e, mkData(1, 8960))
	}
	// Dequeue slowly: every dequeue happens 50ms after the packets went in,
	// so sojourn stays far above the 5ms target.
	now := sim.Duration(50 * time.Millisecond)
	drops0 := q.Stats().Dropped
	for i := 0; i < 1500; i++ {
		now += sim.Duration(2 * time.Millisecond)
		p := q.Dequeue(now)
		if p == nil {
			break
		}
		packet.Release(p)
	}
	if q.Stats().Dropped == drops0 {
		t.Fatal("CoDel never dropped despite persistent 50ms+ sojourn")
	}
}

func TestFQCoDelNoDropsWhenSojournLow(t *testing.T) {
	q := NewFQCoDel(100_000_000, false, FQCoDelParams{})
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		q.Enqueue(now, mkData(1, 8960))
		now += sim.Duration(100 * time.Microsecond)
		p := q.Dequeue(now)
		if p == nil {
			t.Fatal("expected a packet")
		}
		packet.Release(p)
	}
	if d := q.Stats().Dropped; d != 0 {
		t.Fatalf("dropped %d packets with sub-target sojourn", d)
	}
}

func TestFQCoDelECNMarks(t *testing.T) {
	q := NewFQCoDel(100_000_000, true, FQCoDelParams{})
	for i := 0; i < 2000; i++ {
		p := mkData(1, 8960)
		p.ECN = packet.ECT0
		q.Enqueue(0, p)
	}
	now := sim.Duration(50 * time.Millisecond)
	marked := 0
	for i := 0; i < 1500; i++ {
		now += sim.Duration(2 * time.Millisecond)
		p := q.Dequeue(now)
		if p == nil {
			break
		}
		if p.ECN == packet.CE {
			marked++
		}
		packet.Release(p)
	}
	if marked == 0 || q.Stats().Marked == 0 {
		t.Fatal("ECN-capable packets should be CE-marked, not dropped")
	}
	if q.Stats().Dropped != 0 {
		t.Fatalf("ECT packets were dropped (%d) despite ECN mode", q.Stats().Dropped)
	}
}

func TestFQCoDelConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		q := NewFQCoDel(200_000, false, FQCoDelParams{})
		now := sim.Time(0)
		deq := 0
		for _, op := range ops {
			now += sim.Time(op)
			if op%4 == 0 {
				if p := q.Dequeue(now); p != nil {
					deq++
					packet.Release(p)
				}
			} else {
				q.Enqueue(now, mkData(packet.FlowID(op%7), units.ByteSize(op%5000)+100))
			}
			if q.Bytes() > q.Capacity() || q.Bytes() < 0 || q.Len() < 0 {
				return false
			}
		}
		s := q.Stats()
		// Offered = dequeued-by-caller + all drops + still queued.
		return s.Enqueued == uint64(deq)+s.Dropped+uint64(q.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFQCoDelBackloggedFlows(t *testing.T) {
	q := NewFQCoDel(10_000_000, false, FQCoDelParams{})
	for f := packet.FlowID(0); f < 20; f++ {
		q.Enqueue(0, mkData(f, 1000))
	}
	if got := q.BackloggedFlows(); got < 15 {
		t.Errorf("BackloggedFlows = %d, want ~20 (some hash collisions allowed)", got)
	}
}

func BenchmarkFQCoDelEnqueueDequeue(b *testing.B) {
	q := NewFQCoDel(1<<30, false, FQCoDelParams{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(sim.Time(i), mkData(packet.FlowID(i%64), 8960))
		if p := q.Dequeue(sim.Time(i)); p != nil {
			packet.Release(p)
		}
	}
}
