package aqm

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// FQCoDelParams are the RFC 8290 knobs. Zero values select the RFC/Linux
// defaults: 1024 flow buckets, a quantum of one jumbo frame, CoDel target
// 5 ms / interval 100 ms.
type FQCoDelParams struct {
	Flows   int // number of hash buckets (default 1024)
	Quantum units.ByteSize
	CoDel   CoDelParams
	Perturb uint64 // hash perturbation (decorrelates replicas)
}

// FQCoDel is the Fair Queuing / Controlled Delay discipline (RFC 8290):
// flows are hashed into sub-queues served by deficit round-robin with a
// new-flow priority list, and each sub-queue runs the CoDel drop law. It is
// the discipline the paper finds delivers near-perfect fairness.
type FQCoDel struct {
	p     FQCoDelParams
	cap   units.ByteSize
	bytes units.ByteSize
	npkts int
	stats Stats

	queues   []flowQueue
	newFlows flowList // indices into queues
	oldFlows flowList

	trc *telemetry.PortTracer
}

// SetTrace implements TraceSink: fat-flow evictions and every flow queue's
// CoDel control law report into the same port ring.
func (q *FQCoDel) SetTrace(t *telemetry.PortTracer) {
	q.trc = t
	for i := range q.queues {
		q.queues[i].codel.trc = t
	}
}

type flowQueue struct {
	parent  *FQCoDel // owning discipline, for shared byte/packet accounting
	ring    pktRing
	bytes   int64
	deficit int64
	codel   codelState
	state   uint8 // 0 idle, 1 on new list, 2 on old list
}

// pop implements codelSource: remove the head packet and maintain both the
// per-flow and the discipline-wide accounting.
func (fq *flowQueue) pop() *packet.Packet {
	p := fq.ring.pop()
	if p != nil {
		fq.bytes -= int64(p.Size)
		fq.parent.bytes -= p.Size
		fq.parent.npkts--
	}
	return p
}

// backlog implements codelSource.
func (fq *flowQueue) backlog() int64 { return fq.bytes }

const (
	fqIdle uint8 = iota
	fqNew
	fqOld
)

// flowList is an intrusive FIFO of bucket indices.
type flowList struct {
	items []int
}

func (l *flowList) empty() bool  { return len(l.items) == 0 }
func (l *flowList) push(i int)   { l.items = append(l.items, i) }
func (l *flowList) head() int    { return l.items[0] }
func (l *flowList) popHead() int { h := l.items[0]; l.items = l.items[1:]; return h }
func (l *flowList) rotate()      { h := l.popHead(); l.push(h) }

// NewFQCoDel returns an FQ-CoDel queue holding at most capacity bytes total.
func NewFQCoDel(capacity units.ByteSize, ecn bool, p FQCoDelParams) *FQCoDel {
	if capacity <= 0 {
		capacity = 1
	}
	if p.Flows <= 0 {
		p.Flows = 1024
	}
	if p.Quantum <= 0 {
		p.Quantum = 8960 // one jumbo frame, mirroring Linux quantum≈MTU
	}
	p.CoDel.defaults()
	if ecn {
		p.CoDel.ECN = true
	}
	q := &FQCoDel{
		p:      p,
		cap:    capacity,
		queues: make([]flowQueue, p.Flows),
	}
	for i := range q.queues {
		q.queues[i].parent = q
		q.queues[i].codel.p = p.CoDel
	}
	return q
}

// Name implements Queue.
func (q *FQCoDel) Name() string { return string(KindFQCoDel) }

// Capacity implements Queue.
func (q *FQCoDel) Capacity() units.ByteSize { return q.cap }

// Len implements Queue.
func (q *FQCoDel) Len() int { return q.npkts }

// Bytes implements Queue.
func (q *FQCoDel) Bytes() units.ByteSize { return q.bytes }

// Stats implements Queue.
func (q *FQCoDel) Stats() Stats { return q.stats }

// Enqueue implements Queue. When the shared byte limit is exceeded the
// packet at the head of the largest sub-queue is dropped (RFC 8290 §4.1's
// fat-flow eviction), which protects thin flows from bulk ones.
//
// Counter semantics differ from FIFO/RED: every offered packet counts as
// Enqueued (FQ-CoDel never rejects at the door), and Dropped counts all
// post-acceptance losses (fat-flow evictions and CoDel dequeue drops), so
// Enqueued = Dequeued + Dropped + Len at all times.
func (q *FQCoDel) Enqueue(now sim.Time, p *packet.Packet) bool {
	idx := packet.FlowHash(p.Flow, q.p.Perturb, q.p.Flows)
	fq := &q.queues[idx]
	p.EnqueueAt = now
	fq.ring.push(p)
	fq.bytes += int64(p.Size)
	q.bytes += p.Size
	q.npkts++
	q.stats.Enqueued++

	if fq.state == fqIdle {
		fq.state = fqNew
		fq.deficit = int64(q.p.Quantum)
		q.newFlows.push(idx)
	}

	accepted := true
	for q.bytes > q.cap {
		if q.dropFromFattest(now, idx, p) {
			accepted = false // the packet we just enqueued was the victim
		}
	}
	return accepted
}

// dropFromFattest drops the head packet of the largest sub-queue. It returns
// true when the victim is exactly the packet just enqueued (so Enqueue can
// report a drop to the caller).
func (q *FQCoDel) dropFromFattest(now sim.Time, justIdx int, just *packet.Packet) bool {
	fat, fatBytes := -1, int64(-1)
	for i := range q.queues {
		if q.queues[i].bytes > fatBytes {
			fat, fatBytes = i, q.queues[i].bytes
		}
	}
	if fat < 0 || fatBytes <= 0 {
		return false
	}
	fq := &q.queues[fat]
	victim := fq.ring.pop()
	if victim == nil {
		return false
	}
	fq.bytes -= int64(victim.Size)
	q.bytes -= victim.Size
	q.npkts--
	q.stats.Dropped++
	q.stats.DroppedBytes += victim.Size
	if q.trc != nil {
		q.trc.Drop(int64(now), uint32(victim.Flow), telemetry.DropOverlimit, int64(victim.Size), int64(q.bytes))
	}
	isJust := fat == justIdx && victim == just
	packet.Release(victim)
	return isJust
}

// Dequeue implements Queue with the RFC 8290 two-list DRR scheduler.
func (q *FQCoDel) Dequeue(now sim.Time) *packet.Packet {
	for {
		var list *flowList
		if !q.newFlows.empty() {
			list = &q.newFlows
		} else if !q.oldFlows.empty() {
			list = &q.oldFlows
		} else {
			return nil
		}
		idx := list.head()
		fq := &q.queues[idx]

		if fq.deficit <= 0 {
			fq.deficit += int64(q.p.Quantum)
			// Move to the back of the old list.
			list.popHead()
			fq.state = fqOld
			q.oldFlows.push(idx)
			continue
		}

		p := fq.codel.dequeue(now, fq, &q.stats)

		if p == nil {
			// Queue drained. A new-list flow moves to the old list (to
			// guard against a flow cycling through "new" status); an
			// old-list flow becomes idle.
			list.popHead()
			if fq.state == fqNew && !q.oldFlows.empty() {
				fq.state = fqOld
				q.oldFlows.push(idx)
			} else {
				fq.state = fqIdle
			}
			continue
		}
		fq.deficit -= int64(p.Size)
		q.stats.Dequeued++
		return p
	}
}

// SelfCheck implements SelfChecker: it re-derives the discipline-wide byte
// and packet occupancy from the per-flow rings, validates each flow's own
// byte accounting, and checks scheduler-list consistency (a backlogged flow
// is never idle; every listed flow's state matches the list holding it;
// no flow sits on both or either list twice).
func (q *FQCoDel) SelfCheck() error {
	var bytes units.ByteSize
	npkts := 0
	for i := range q.queues {
		fq := &q.queues[i]
		var fqSum int64
		fq.ring.forEach(func(p *packet.Packet) { fqSum += int64(p.Size) })
		if fqSum != fq.bytes {
			return fmt.Errorf("fq_codel: flow %d packets sum to %d bytes but flow occupancy says %d", i, fqSum, fq.bytes)
		}
		if fq.ring.len() > 0 && fq.state == fqIdle {
			return fmt.Errorf("fq_codel: flow %d holds %d packets but is marked idle", i, fq.ring.len())
		}
		bytes += units.ByteSize(fqSum)
		npkts += fq.ring.len()
	}
	if bytes != q.bytes {
		return fmt.Errorf("fq_codel: flows sum to %d bytes but discipline occupancy says %d", bytes, q.bytes)
	}
	if npkts != q.npkts {
		return fmt.Errorf("fq_codel: flows hold %d packets but discipline count says %d", npkts, q.npkts)
	}
	if q.bytes < 0 || q.bytes > q.cap {
		return fmt.Errorf("fq_codel: occupancy %d outside [0, %d]", q.bytes, q.cap)
	}
	if q.stats.Enqueued != q.stats.Dequeued+q.stats.Dropped+uint64(q.npkts) {
		return fmt.Errorf("fq_codel: offered-packet imbalance: enqueued=%d != dequeued=%d + dropped=%d + queued=%d",
			q.stats.Enqueued, q.stats.Dequeued, q.stats.Dropped, q.npkts)
	}
	seen := make(map[int]uint8, len(q.newFlows.items)+len(q.oldFlows.items))
	for _, idx := range q.newFlows.items {
		if idx < 0 || idx >= len(q.queues) || q.queues[idx].state != fqNew {
			return fmt.Errorf("fq_codel: new-list entry %d has state %d, want %d", idx, q.queues[idx].state, fqNew)
		}
		if seen[idx] != 0 {
			return fmt.Errorf("fq_codel: flow %d appears twice on the scheduler lists", idx)
		}
		seen[idx] = fqNew
	}
	for _, idx := range q.oldFlows.items {
		if idx < 0 || idx >= len(q.queues) || q.queues[idx].state != fqOld {
			return fmt.Errorf("fq_codel: old-list entry %d has state %d, want %d", idx, q.queues[idx].state, fqOld)
		}
		if seen[idx] != 0 {
			return fmt.Errorf("fq_codel: flow %d appears twice on the scheduler lists", idx)
		}
		seen[idx] = fqOld
	}
	for i := range q.queues {
		if q.queues[i].state != fqIdle && seen[i] == 0 {
			return fmt.Errorf("fq_codel: flow %d has state %d but sits on no scheduler list", i, q.queues[i].state)
		}
	}
	return nil
}

// BackloggedFlows reports how many sub-queues currently hold packets (used
// by fairness tests).
func (q *FQCoDel) BackloggedFlows() int {
	n := 0
	for i := range q.queues {
		if q.queues[i].ring.len() > 0 {
			n++
		}
	}
	return n
}
