package aqm

import (
	"math"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// CoDelParams are the RFC 8289 control-law knobs.
type CoDelParams struct {
	Target   time.Duration // acceptable standing sojourn time (default 5ms)
	Interval time.Duration // sliding window (default 100ms)
	ECN      bool          // mark ECT packets instead of dropping
}

func (p *CoDelParams) defaults() {
	if p.Target <= 0 {
		p.Target = 5 * time.Millisecond
	}
	if p.Interval <= 0 {
		p.Interval = 100 * time.Millisecond
	}
}

// codelState holds the per-queue CoDel controller (RFC 8289 §5). It is the
// dequeue-side law FQ-CoDel applies independently to each flow queue.
type codelState struct {
	p              CoDelParams
	firstAboveTime sim.Time // when sojourn first exceeded target (0 = not yet)
	dropNext       sim.Time // time of next scheduled drop while dropping
	count          int      // drops since entering drop state
	lastCount      int      // count at the previous drop-state entry
	dropping       bool
	// trc, when non-nil, receives the control law's drop/mark events
	// (installed by the owning discipline's SetTrace; shared by every
	// flow queue under FQ-CoDel).
	trc *telemetry.PortTracer
}

// controlLaw returns the next drop time: dropNext = t + interval/sqrt(count).
func (c *codelState) controlLaw(t sim.Time) sim.Time {
	return t + sim.Time(float64(c.p.Interval.Nanoseconds())/math.Sqrt(float64(c.count)))
}

// shouldDrop runs the RFC 8289 "ok to drop" decision for a packet with the
// given sojourn time at dequeue time now.
func (c *codelState) shouldDrop(sojourn, now sim.Time, backlogBytes int64) bool {
	if sojourn < sim.Duration(c.p.Target) || backlogBytes <= 0 {
		c.firstAboveTime = 0
		return false
	}
	if c.firstAboveTime == 0 {
		c.firstAboveTime = now + sim.Duration(c.p.Interval)
		return false
	}
	return now >= c.firstAboveTime
}

// codelSource abstracts the packet storage a CoDel controller drains. The
// caller passes a stable pointer (its own flow-queue struct), keeping the
// dequeue hot path free of per-call closure allocations.
type codelSource interface {
	// pop removes and returns the head packet, updating the caller's byte
	// and packet accounting, or returns nil when empty.
	pop() *packet.Packet
	// backlog returns the bytes still queued behind the popped packet.
	backlog() int64
}

// dequeue applies the controller to the head packet of src at time now. It
// returns the packet to transmit (possibly after dropping predecessors);
// drops and marks are counted in stats. The caller supplies its own storage
// via src so FQ-CoDel can share this logic across flow queues.
func (c *codelState) dequeue(now sim.Time, src codelSource, stats *Stats) *packet.Packet {
	p := src.pop()
	if p == nil {
		c.dropping = false
		return nil
	}
	sojourn := now - p.EnqueueAt

	if c.dropping {
		if !c.shouldDrop(sojourn, now, src.backlog()) {
			c.dropping = false
			return p
		}
		for now >= c.dropNext && c.dropping {
			if c.p.ECN && (p.ECN == packet.ECT0 || p.ECN == packet.ECT1) {
				p.ECN = packet.CE
				stats.Marked++
				if c.trc != nil {
					c.trc.Mark(int64(now), uint32(p.Flow), telemetry.MarkCoDel, int64(p.Size), src.backlog())
				}
				c.count++
				c.dropNext = c.controlLaw(c.dropNext)
				return p
			}
			stats.Dropped++
			stats.DroppedBytes += p.Size
			if c.trc != nil {
				c.trc.Drop(int64(now), uint32(p.Flow), telemetry.DropCoDel, int64(p.Size), src.backlog())
			}
			packet.Release(p)
			c.count++
			p = src.pop()
			if p == nil {
				c.dropping = false
				return nil
			}
			sojourn = now - p.EnqueueAt
			if !c.shouldDrop(sojourn, now, src.backlog()) {
				c.dropping = false
				return p
			}
			c.dropNext = c.controlLaw(c.dropNext)
		}
		return p
	}

	if c.shouldDrop(sojourn, now, src.backlog()) {
		// Enter the dropping state.
		if c.p.ECN && (p.ECN == packet.ECT0 || p.ECN == packet.ECT1) {
			p.ECN = packet.CE
			stats.Marked++
			if c.trc != nil {
				c.trc.Mark(int64(now), uint32(p.Flow), telemetry.MarkCoDel, int64(p.Size), src.backlog())
			}
		} else {
			stats.Dropped++
			stats.DroppedBytes += p.Size
			if c.trc != nil {
				c.trc.Drop(int64(now), uint32(p.Flow), telemetry.DropCoDel, int64(p.Size), src.backlog())
			}
			packet.Release(p)
			p = src.pop() // may be nil; transmit the next packet if any
		}
		c.dropping = true
		// RFC 8289: if we recently left the dropping state, resume a
		// higher drop rate rather than restarting from 1.
		if now-c.dropNext < sim.Duration(16*c.p.Interval) && c.count > 2 {
			c.count = c.count - 2
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		c.dropNext = c.controlLaw(now)
	}
	return p
}
