package faults

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/aqm"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestParsePresets(t *testing.T) {
	p, err := Parse("flap")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Flaps) != 1 || p.Flaps[0].At != 5*time.Second || p.Flaps[0].Down != 200*time.Millisecond {
		t.Fatalf("flap defaults: %+v", p.Flaps)
	}

	p, err = Parse("ge:pgb=0.01,bad=1+flap:at=10s,down=500ms+bwstep:at=2s,factor=0.25+rttstep:at=3s,delay=40ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.GE == nil || p.GE.PGoodBad != 0.01 || p.GE.LossBad != 1 || p.GE.PBadGood != 0.1 {
		t.Fatalf("ge: %+v", p.GE)
	}
	if len(p.Flaps) != 1 || p.Flaps[0].Down != 500*time.Millisecond {
		t.Fatalf("flap: %+v", p.Flaps)
	}
	if len(p.BWSteps) != 1 || p.BWSteps[0].Factor != 0.25 {
		t.Fatalf("bwstep: %+v", p.BWSteps)
	}
	if len(p.RTTSteps) != 1 || p.RTTSteps[0].Delay != 40*time.Millisecond {
		t.Fatalf("rttstep: %+v", p.RTTSteps)
	}

	p, err = Parse("bwstep:rate=50Mbps")
	if err != nil {
		t.Fatal(err)
	}
	if p.BWSteps[0].Rate != 50*units.MegabitPerSec {
		t.Fatalf("bwstep rate: %+v", p.BWSteps)
	}

	if p, err := Parse(""); p != nil || err != nil {
		t.Fatalf("empty spec: %v, %v", p, err)
	}
	for _, bad := range []string{"nope", "flap:at=xyz", "flap:bogus=1", "ge:pgb", "flap:down=0s"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseJSONAndFile(t *testing.T) {
	spec := `{"ge":{"p_good_bad":0.02,"p_bad_good":0.2,"loss_bad":0.5},"flaps":[{"at_ns":1000000000,"down_ns":200000000}]}`
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.GE == nil || p.GE.PGoodBad != 0.02 || len(p.Flaps) != 1 {
		t.Fatalf("json profile: %+v", p)
	}

	path := filepath.Join(t.TempDir(), "prof.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := Parse("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ID() != p.ID() {
		t.Fatalf("file profile differs: %s vs %s", p2.ID(), p.ID())
	}
	if _, err := Parse("@" + path + ".missing"); err == nil {
		t.Fatal("missing file should fail")
	}
	if _, err := Parse("{not json"); err == nil {
		t.Fatal("bad json should fail")
	}
}

func TestNormalizeClampsAndSorts(t *testing.T) {
	p := Profile{
		GE: &GilbertElliott{PGoodBad: 2, PBadGood: -1, LossBad: 1.5},
		Flaps: []Flap{
			{At: 10 * time.Second, Down: 100 * time.Millisecond},
			{At: -time.Second, Down: 50 * time.Millisecond},
			{At: 2 * time.Second, Down: 0}, // no-op: dropped
		},
		BWSteps:  []BWStep{{At: 5 * time.Second}}, // no rate, no factor: dropped
		RTTSteps: []RTTStep{{At: 1 * time.Second, Factor: 2}},
	}.Normalize()
	if p.GE.PGoodBad != 1 || p.GE.PBadGood != 0 || p.GE.LossBad != 1 {
		t.Fatalf("GE clamp: %+v", p.GE)
	}
	if len(p.Flaps) != 2 || p.Flaps[0].At != 0 || p.Flaps[1].At != 10*time.Second {
		t.Fatalf("flaps: %+v", p.Flaps)
	}
	if len(p.BWSteps) != 0 {
		t.Fatalf("no-op bw step kept: %+v", p.BWSteps)
	}
	if len(p.RTTSteps) != 1 {
		t.Fatalf("rtt steps: %+v", p.RTTSteps)
	}

	// A GE chain that can never drop normalizes away entirely.
	q := Profile{GE: &GilbertElliott{PGoodBad: 0.5, PBadGood: 0.5}}.Normalize()
	if !q.Empty() {
		t.Fatalf("lossless GE should normalize to empty: %+v", q)
	}
}

func TestIDStableAndDistinct(t *testing.T) {
	a := &Profile{GE: &GilbertElliott{PGoodBad: 0.005, PBadGood: 0.1, LossBad: 0.5}}
	b := &Profile{Flaps: []Flap{{At: 5 * time.Second, Down: 200 * time.Millisecond}}}
	var nilProf *Profile
	if nilProf.ID() != "" || (&Profile{}).ID() != "" {
		t.Fatal("empty profiles must render empty IDs")
	}
	if a.ID() == "" || b.ID() == "" || a.ID() == b.ID() {
		t.Fatalf("IDs not distinct: %q vs %q", a.ID(), b.ID())
	}
	// Order-independence: the ID of an unsorted profile matches the sorted one.
	c := &Profile{Flaps: []Flap{
		{At: 9 * time.Second, Down: time.Second},
		{At: 3 * time.Second, Down: time.Second},
	}}
	d := &Profile{Flaps: []Flap{
		{At: 3 * time.Second, Down: time.Second},
		{At: 9 * time.Second, Down: time.Second},
	}}
	if c.ID() != d.ID() {
		t.Fatalf("ID depends on entry order: %q vs %q", c.ID(), d.ID())
	}
	for _, r := range a.ID() + b.ID() {
		switch r {
		case '/', '\\', ' ', '*', '?':
			t.Fatalf("ID contains unsafe rune %q", r)
		}
	}
}

// TestApplyTimeline: the scheduled timeline must hit the port at the right
// simulation times with the right values.
func TestApplyTimeline(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &netem.Sink{}
	po := netem.NewPort(eng, "bneck", 100*units.MegabitPerSec, 10*time.Millisecond,
		aqm.NewFIFO(1<<30), sink)
	Apply(eng, po, &Profile{
		Flaps:    []Flap{{At: 100 * time.Millisecond, Down: 50 * time.Millisecond}},
		BWSteps:  []BWStep{{At: 200 * time.Millisecond, Factor: 0.5}},
		RTTSteps: []RTTStep{{At: 300 * time.Millisecond, Delay: 20 * time.Millisecond}},
	})

	eng.RunFor(110 * time.Millisecond)
	if !po.Down() {
		t.Fatal("flap down not applied at 100ms")
	}
	eng.RunFor(60 * time.Millisecond) // t=170ms
	if po.Down() {
		t.Fatal("flap up not applied at 150ms")
	}
	if po.Rate() != 100*units.MegabitPerSec {
		t.Fatal("bw step applied early")
	}
	eng.RunFor(40 * time.Millisecond) // t=210ms
	if po.Rate() != 50*units.MegabitPerSec {
		t.Fatalf("bw factor step: rate = %v", po.Rate())
	}
	eng.RunFor(100 * time.Millisecond) // t=310ms
	if po.Delay() != 20*time.Millisecond {
		t.Fatalf("rtt step: delay = %v", po.Delay())
	}

	// Nil and empty profiles are no-ops.
	Apply(eng, po, nil)
	Apply(eng, po, &Profile{})
}

// TestApplyGEDeterministicPerSeed: the full loss sequence under a GE
// profile must be a pure function of the engine seed.
func TestApplyGEDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []int64 {
		eng := sim.NewEngine(seed)
		var seqs []int64
		rec := netem.ReceiverFunc(func(now sim.Time, p *packet.Packet) {
			seqs = append(seqs, p.Seq)
			packet.Release(p)
		})
		po := netem.NewPort(eng, "ge", units.GigabitPerSec, 0, aqm.NewFIFO(1<<30), rec)
		Apply(eng, po, &Profile{GE: &GilbertElliott{PGoodBad: 0.05, PBadGood: 0.3, LossBad: 1}})
		for i := 0; i < 5000; i++ {
			p := packet.New()
			p.Size = 1000
			p.Seq = int64(i)
			po.Send(p)
		}
		eng.Run()
		return seqs
	}
	a, b := run(11), run(11)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at delivery %d", i)
		}
	}
	c := run(12)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical loss sequences")
	}
}
