// Package faults implements a deterministic fault-injection layer for the
// simulated network: a scripted, seed-reproducible timeline of impairments
// applied to a netem.Port. The paper's sweeps assume a clean, static
// dumbbell; this package supplies the regimes its future-work section (and
// the related BBR evaluations) identify as the ones where fairness
// inverts — bursty Gilbert–Elliott loss, transient link outages (flaps),
// mid-transfer bandwidth steps, and RTT step changes.
//
// A Profile is pure data (JSON-serializable, part of experiment result
// identity via ID); Apply arms it on an engine+port pair. All randomness
// comes from the port's engine-derived RNG, so the same engine seed and
// profile reproduce the same packet-level fault sequence bit for bit.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/units"
)

// GilbertElliott parameterizes the two-state bursty-loss chain. The chain
// advances once per transmitted packet: in the good state packets drop
// with probability LossGood (usually 0), in the bad state with LossBad;
// transitions happen good→bad with PGoodBad and bad→good with PBadGood.
// Mean burst length is 1/PBadGood packets and the long-run bad fraction is
// PGoodBad/(PGoodBad+PBadGood).
type GilbertElliott struct {
	PGoodBad float64 `json:"p_good_bad"`
	PBadGood float64 `json:"p_bad_good"`
	LossGood float64 `json:"loss_good,omitempty"`
	LossBad  float64 `json:"loss_bad"`
}

// Flap is one transient link outage: the port goes down at At (draining
// and dropping its queue) and comes back after Down.
type Flap struct {
	At   time.Duration `json:"at_ns"`
	Down time.Duration `json:"down_ns"`
}

// BWStep changes the port's link rate at At. Rate sets an absolute rate;
// when Rate is zero, Factor scales the rate the port had when the profile
// was applied (Factor 1 restores it).
type BWStep struct {
	At     time.Duration   `json:"at_ns"`
	Rate   units.Bandwidth `json:"rate_bps,omitempty"`
	Factor float64         `json:"factor,omitempty"`
}

// RTTStep changes the port's propagation delay at At. Delay sets an
// absolute one-way delay for the port's link leg; when Delay is zero,
// Factor scales the delay the port had when the profile was applied
// (Factor 1 restores it).
type RTTStep struct {
	At     time.Duration `json:"at_ns"`
	Delay  time.Duration `json:"delay_ns,omitempty"`
	Factor float64       `json:"factor,omitempty"`
}

// Profile is a complete scripted fault timeline for one port.
type Profile struct {
	GE       *GilbertElliott `json:"ge,omitempty"`
	Flaps    []Flap          `json:"flaps,omitempty"`
	BWSteps  []BWStep        `json:"bw_steps,omitempty"`
	RTTSteps []RTTStep       `json:"rtt_steps,omitempty"`
}

// Empty reports whether the profile injects nothing.
func (p *Profile) Empty() bool {
	return p == nil ||
		(p.GE == nil && len(p.Flaps) == 0 && len(p.BWSteps) == 0 && len(p.RTTSteps) == 0)
}

func clamp01(v float64) float64 {
	if !(v > 0) { // negatives and NaN (strconv accepts "NaN") both clamp to 0
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Normalize returns the effective profile: probabilities clamped to [0,1],
// negative times and durations clamped to zero, no-op entries dropped, and
// each timeline sorted by activation time so Apply and ID are order-
// independent of how the profile was written.
func (p Profile) Normalize() Profile {
	if p.GE != nil {
		ge := *p.GE
		ge.PGoodBad = clamp01(ge.PGoodBad)
		ge.PBadGood = clamp01(ge.PBadGood)
		ge.LossGood = clamp01(ge.LossGood)
		ge.LossBad = clamp01(ge.LossBad)
		if ge.LossGood == 0 && ge.LossBad == 0 {
			p.GE = nil
		} else {
			p.GE = &ge
		}
	}
	flaps := make([]Flap, 0, len(p.Flaps))
	for _, f := range p.Flaps {
		if f.At < 0 {
			f.At = 0
		}
		if f.Down <= 0 {
			continue
		}
		flaps = append(flaps, f)
	}
	sort.Slice(flaps, func(i, j int) bool { return flaps[i].At < flaps[j].At })
	p.Flaps = flaps

	bws := make([]BWStep, 0, len(p.BWSteps))
	for _, s := range p.BWSteps {
		if s.At < 0 {
			s.At = 0
		}
		if s.Rate <= 0 && s.Factor <= 0 {
			continue
		}
		bws = append(bws, s)
	}
	sort.Slice(bws, func(i, j int) bool { return bws[i].At < bws[j].At })
	p.BWSteps = bws

	rtts := make([]RTTStep, 0, len(p.RTTSteps))
	for _, s := range p.RTTSteps {
		if s.At < 0 {
			s.At = 0
		}
		if s.Delay <= 0 && s.Factor <= 0 {
			continue
		}
		rtts = append(rtts, s)
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i].At < rtts[j].At })
	p.RTTSteps = rtts
	return p
}

// ID renders a compact, filesystem-safe identifier that captures every
// parameter of the (normalized) profile, for embedding in experiment
// result identities. An empty profile renders "".
func (p *Profile) ID() string {
	if p.Empty() {
		return ""
	}
	n := p.Normalize()
	var parts []string
	if n.GE != nil {
		parts = append(parts, fmt.Sprintf("ge%g-%g-%g-%g",
			n.GE.PGoodBad, n.GE.PBadGood, n.GE.LossGood, n.GE.LossBad))
	}
	for _, f := range n.Flaps {
		parts = append(parts, fmt.Sprintf("flap%s-%s", dur(f.At), dur(f.Down)))
	}
	for _, s := range n.BWSteps {
		if s.Rate > 0 {
			parts = append(parts, fmt.Sprintf("bw%s@%s", s.Rate, dur(s.At)))
		} else {
			parts = append(parts, fmt.Sprintf("bwx%g@%s", s.Factor, dur(s.At)))
		}
	}
	for _, s := range n.RTTSteps {
		if s.Delay > 0 {
			parts = append(parts, fmt.Sprintf("rtt%s@%s", dur(s.Delay), dur(s.At)))
		} else {
			parts = append(parts, fmt.Sprintf("rttx%g@%s", s.Factor, dur(s.At)))
		}
	}
	return strings.Join(parts, "+")
}

// dur renders a duration without the spaces or odd characters that would
// hurt a filename ("200ms", "5s", "1m30s" are all safe as-is).
func dur(d time.Duration) string { return d.String() }

// Apply arms the profile on port po: the Gilbert–Elliott chain is
// installed immediately and every timeline entry is scheduled on eng
// relative to the current simulation time. Relative BW/RTT factors resolve
// against the port's rate and delay at Apply time. A nil or empty profile
// is a no-op.
func Apply(eng *sim.Engine, po *netem.Port, p *Profile) {
	if p.Empty() {
		return
	}
	n := p.Normalize()
	if n.GE != nil {
		po.SetGELoss(n.GE.PGoodBad, n.GE.PBadGood, n.GE.LossGood, n.GE.LossBad)
	}
	for _, f := range n.Flaps {
		eng.Schedule(f.At, func() { po.SetDown(true) })
		eng.Schedule(f.At+f.Down, func() { po.SetDown(false) })
	}
	baseRate := po.Rate()
	for _, s := range n.BWSteps {
		rate := s.Rate
		if rate <= 0 {
			rate = units.Bandwidth(float64(baseRate) * s.Factor)
		}
		eng.Schedule(s.At, func() { po.SetRate(rate) })
	}
	baseDelay := po.Delay()
	for _, s := range n.RTTSteps {
		delay := s.Delay
		if delay <= 0 {
			delay = time.Duration(float64(baseDelay) * s.Factor)
		}
		eng.Schedule(s.At, func() { po.SetDelay(delay) })
	}
}

// Parse builds a profile from a CLI spec. Three forms are accepted:
//
//   - "@path" — read a JSON Profile from a file
//
//   - "{...}" — an inline JSON Profile
//
//   - preset list — "+"-separated presets, each "name" or
//     "name:key=value,key=value". Presets and their keys (defaults in
//     parentheses):
//
//     flap     at (5s), down (200ms)
//     ge       pgb (0.005), pbg (0.1), good (0), bad (0.5)
//     bwstep   at (5s), factor (0.5) or rate (e.g. 50Mbps)
//     rttstep  at (5s), factor (2) or delay (e.g. 31ms)
//
// e.g. "flap" or "ge:pgb=0.01,bad=1+flap:at=10s,down=500ms". An empty
// spec returns (nil, nil).
func Parse(spec string) (*Profile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("faults: read profile: %w", err)
		}
		return parseJSON(data)
	}
	if strings.HasPrefix(spec, "{") {
		return parseJSON([]byte(spec))
	}
	var p Profile
	for _, clause := range strings.Split(spec, "+") {
		if err := applyPreset(&p, strings.TrimSpace(clause)); err != nil {
			return nil, err
		}
	}
	n := p.Normalize()
	if n.Empty() {
		return nil, fmt.Errorf("faults: profile %q injects nothing", spec)
	}
	return &n, nil
}

func parseJSON(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: parse profile JSON: %w", err)
	}
	n := p.Normalize()
	return &n, nil
}

// applyPreset parses one "name[:k=v,...]" clause into p.
func applyPreset(p *Profile, clause string) error {
	if clause == "" {
		return fmt.Errorf("faults: empty preset clause")
	}
	name, argstr, _ := strings.Cut(clause, ":")
	args := map[string]string{}
	if argstr != "" {
		for _, kv := range strings.Split(argstr, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return fmt.Errorf("faults: bad preset argument %q (want key=value)", kv)
			}
			args[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	getDur := func(key string, def time.Duration) (time.Duration, error) {
		v, ok := args[key]
		if !ok {
			return def, nil
		}
		delete(args, key)
		d, err := time.ParseDuration(v)
		if err != nil {
			return 0, fmt.Errorf("faults: %s: bad %s: %w", name, key, err)
		}
		return d, nil
	}
	getFloat := func(key string, def float64) (float64, error) {
		v, ok := args[key]
		if !ok {
			return def, nil
		}
		delete(args, key)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("faults: %s: bad %s: %w", name, key, err)
		}
		return f, nil
	}

	switch name {
	case "flap":
		at, err := getDur("at", 5*time.Second)
		if err != nil {
			return err
		}
		down, err := getDur("down", 200*time.Millisecond)
		if err != nil {
			return err
		}
		p.Flaps = append(p.Flaps, Flap{At: at, Down: down})
	case "ge":
		ge := &GilbertElliott{}
		var err error
		if ge.PGoodBad, err = getFloat("pgb", 0.005); err != nil {
			return err
		}
		if ge.PBadGood, err = getFloat("pbg", 0.1); err != nil {
			return err
		}
		if ge.LossGood, err = getFloat("good", 0); err != nil {
			return err
		}
		if ge.LossBad, err = getFloat("bad", 0.5); err != nil {
			return err
		}
		p.GE = ge
	case "bwstep":
		at, err := getDur("at", 5*time.Second)
		if err != nil {
			return err
		}
		step := BWStep{At: at}
		if v, ok := args["rate"]; ok {
			delete(args, "rate")
			rate, err := units.ParseBandwidth(v)
			if err != nil {
				return fmt.Errorf("faults: bwstep: bad rate: %w", err)
			}
			step.Rate = rate
		} else if step.Factor, err = getFloat("factor", 0.5); err != nil {
			return err
		}
		p.BWSteps = append(p.BWSteps, step)
	case "rttstep":
		at, err := getDur("at", 5*time.Second)
		if err != nil {
			return err
		}
		step := RTTStep{At: at}
		if _, ok := args["delay"]; ok {
			if step.Delay, err = getDur("delay", 0); err != nil {
				return err
			}
		} else if step.Factor, err = getFloat("factor", 2); err != nil {
			return err
		}
		p.RTTSteps = append(p.RTTSteps, step)
	default:
		return fmt.Errorf("faults: unknown preset %q (want flap, ge, bwstep or rttstep)", name)
	}
	for k := range args {
		return fmt.Errorf("faults: %s: unknown key %q", name, k)
	}
	return nil
}
