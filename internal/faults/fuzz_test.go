package faults

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// FuzzFaultsParse throws arbitrary specs at the profile parser. A spec may
// be rejected, but an accepted one must yield a profile whose normal form
// is a fixed point (Normalize idempotent), whose probabilities are finite
// and in [0, 1], whose timelines are sorted with no no-op entries, and
// whose identity survives a JSON round trip — the properties the sweep's
// checkpoint identity and the fault applier rely on.
func FuzzFaultsParse(f *testing.F) {
	for _, s := range []string{
		"",
		"flap",
		"ge",
		"flap+ge+bwstep+rttstep",
		"ge:pgb=0.01,bad=1+flap:at=10s,down=500ms",
		"bwstep:rate=50Mbps+rttstep:factor=2",
		"bwstep:at=3s,factor=0.25",
		"rttstep:at=1s,delay=31ms",
		"flap:at=-5s,down=1ms",
		"ge:pgb=2,bad=-1",
		"ge:pgb=NaN,bad=Inf",
		`{"flaps":[{"at_ns":1000000,"down_ns":2000000}]}`,
		`{"ge":{"p_good_bad":0.5,"loss_bad":1}}`,
		"{",
		"bogus",
		"flap:at",
		"flap:=,=",
		"+",
		"flap:down=99999h",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if strings.HasPrefix(strings.TrimSpace(spec), "@") {
			t.Skip("file specs read the filesystem")
		}
		p, err := Parse(spec)
		if err != nil {
			if p != nil {
				t.Fatalf("Parse(%q) returned both a profile and %v", spec, err)
			}
			return
		}
		if p == nil {
			return // blank spec
		}
		n := p.Normalize()
		if again := n.Normalize(); !reflect.DeepEqual(n, again) {
			t.Fatalf("Normalize not idempotent for %q:\n%+v\n%+v", spec, n, again)
		}
		if n.GE != nil {
			for _, v := range []float64{n.GE.PGoodBad, n.GE.PBadGood, n.GE.LossGood, n.GE.LossBad} {
				if math.IsNaN(v) || v < 0 || v > 1 {
					t.Fatalf("Parse(%q): GE probability %v escaped clamping", spec, v)
				}
			}
		}
		for i, fl := range n.Flaps {
			if fl.At < 0 || fl.Down <= 0 {
				t.Fatalf("Parse(%q): no-op flap survived normalization: %+v", spec, fl)
			}
			if i > 0 && fl.At < n.Flaps[i-1].At {
				t.Fatalf("Parse(%q): flap timeline unsorted", spec)
			}
		}
		for i, s := range n.BWSteps {
			if s.At < 0 || (s.Rate <= 0 && s.Factor <= 0) {
				t.Fatalf("Parse(%q): no-op bw step survived: %+v", spec, s)
			}
			if i > 0 && s.At < n.BWSteps[i-1].At {
				t.Fatalf("Parse(%q): bw timeline unsorted", spec)
			}
		}
		for i, s := range n.RTTSteps {
			if s.At < 0 || (s.Delay <= 0 && s.Factor <= 0) {
				t.Fatalf("Parse(%q): no-op rtt step survived: %+v", spec, s)
			}
			if i > 0 && s.At < n.RTTSteps[i-1].At {
				t.Fatalf("Parse(%q): rtt timeline unsorted", spec)
			}
		}
		if p.ID() != n.ID() {
			t.Fatalf("Parse(%q): identity changes under normalization: %q vs %q", spec, p.ID(), n.ID())
		}
		// A profile must survive serialization with its identity intact —
		// this is how profiles travel inside checkpointed configs.
		data, jerr := json.Marshal(&n)
		if jerr != nil {
			t.Fatalf("Parse(%q): profile does not marshal: %v", spec, jerr)
		}
		rt, rerr := Parse(string(data))
		if rerr != nil {
			t.Fatalf("Parse(%q): round trip rejected %s: %v", spec, data, rerr)
		}
		if rt.ID() != p.ID() {
			t.Fatalf("Parse(%q): identity lost in JSON round trip: %q vs %q", spec, p.ID(), rt.ID())
		}
	})
}
