package workload

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestPaperPlanTable2(t *testing.T) {
	cases := []struct {
		bw        units.Bandwidth
		processes int
		streams   int
		total     int // paper's "Total #Flows" = 2 nodes × per-node flows
	}{
		{100 * units.MegabitPerSec, 1, 1, 2},
		{500 * units.MegabitPerSec, 5, 1, 10},
		{1 * units.GigabitPerSec, 10, 1, 20},
		{10 * units.GigabitPerSec, 10, 10, 200},
		{25 * units.GigabitPerSec, 25, 10, 500},
	}
	for _, c := range cases {
		p := PaperPlan(c.bw)
		if p.Processes != c.processes || p.Streams != c.streams {
			t.Errorf("PaperPlan(%v) = %+v, want %d×%d", c.bw, p, c.processes, c.streams)
		}
		if got := 2 * p.FlowsPerNode(); got != c.total {
			t.Errorf("PaperPlan(%v) total flows = %d, want %d", c.bw, got, c.total)
		}
	}
}

func TestScaledPlanRespectsCap(t *testing.T) {
	f := func(bwSel uint8, cap8 uint8) bool {
		bws := units.PaperBandwidths()
		bw := bws[int(bwSel)%len(bws)]
		cap := int(cap8%64) + 1
		p := ScaledPlan(bw, cap)
		return p.FlowsPerNode() <= cap && p.Processes >= 1 && p.Streams >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaledPlanUncapped(t *testing.T) {
	if got := ScaledPlan(25*units.GigabitPerSec, 0); got != PaperPlan(25*units.GigabitPerSec) {
		t.Errorf("cap 0 should return the paper plan, got %+v", got)
	}
}

func TestStartJitterRange(t *testing.T) {
	rng := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		j := StartJitter(rng, 100*time.Millisecond)
		if j < 0 || j >= 100*time.Millisecond {
			t.Fatalf("jitter out of range: %v", j)
		}
	}
	if StartJitter(rng, 0) != 0 {
		t.Error("zero spread should give zero jitter")
	}
}

func TestDefaultDuration(t *testing.T) {
	if d := DefaultDuration(100*units.MegabitPerSec, true); d != PaperDuration {
		t.Errorf("paper scale duration = %v", d)
	}
	if DefaultDuration(25*units.GigabitPerSec, false) >= DefaultDuration(100*units.MegabitPerSec, false) {
		t.Error("high-BW scaled runs should be shorter")
	}
}

func TestDefaultMaxFlows(t *testing.T) {
	if DefaultMaxFlows(25*units.GigabitPerSec, true) != 0 {
		t.Error("paper scale must not cap flows")
	}
	if DefaultMaxFlows(25*units.GigabitPerSec, false) == 0 {
		t.Error("scaled 25G should cap flows")
	}
	if DefaultMaxFlows(100*units.MegabitPerSec, false) != 0 {
		t.Error("100M needs no cap")
	}
}

func TestPlanString(t *testing.T) {
	s := Plan{Processes: 10, Streams: 10}.String()
	if s == "" {
		t.Error("empty plan string")
	}
}
