# CI entry points for the TCP-fairness reproduction.
#
#   make ci         — everything below, in order (what a PR must pass)
#   make lint       — formatting (gofmt) and static analysis (go vet)
#   make vet        — static analysis only
#   make build      — compile all packages and commands
#   make test       — full suite under the race detector (covers the
#                     experiment worker pool in internal/experiment/runner.go
#                     and runs every audited/metamorphic suite)
#   make allocs     — zero-allocation event-core gates; built with !race
#                     (the race runtime changes the allocation profile).
#                     Auditing and tracing are off here: the gates prove the
#                     auditor and the telemetry tracer cost nothing when
#                     disabled (TestAllocGuardTracingDisabled pins the same
#                     ≤1 alloc/packet budget with the trace knobs present).
#   make audit      — targeted invariant-auditor suites: conservation across
#                     all AQMs, seeded-bug detection, violation-to-result
#                     plumbing, metamorphic relations
#   make resilience — fault-injection shape suite: flap recovery, bursty-loss
#                     inversion, deterministic replay, runner hardening
#   make smoke      — end-to-end fault sweep through cmd/sweep in a private
#                     temp dir (flap preset, 4 cheap configs) with -audit and
#                     -strict: any errored or checkpoint-skipped config makes
#                     the target fail
#   make smoke-svc  — end-to-end sweepd service check (scripts/smoke_svc.sh):
#                     daemon on an ephemeral port, served sweep byte-identical
#                     to a direct CLI run (modulo wall_ns), repeated POST
#                     coalesced with zero new simulations, cache hits visible
#                     on /metrics, a -duration override re-simulated (never
#                     served stale cache), journal compacted on shutdown
#   make trace-smoke— end-to-end flight-recorder check (scripts/smoke_trace.sh):
#                     tcpfair -telemetry-out records a run, cmd/timeline
#                     renders cwnd + queue-occupancy timelines from it,
#                     sweep -trace-dir writes per-config traces, sweepd -trace
#                     serves the same stream over /v1/sweeps/{id}/trace, and
#                     a traced sweep stays byte-identical to an untraced one
#   make fuzz-smoke — every fuzz target for a short budget, seeded from the
#                     checked-in corpora under */testdata/fuzz
#   make bench      — engine micro-benchmarks (0 allocs/op on reuse paths)

GO ?= go
FUZZTIME ?= 10s

.PHONY: ci lint vet build test allocs audit resilience smoke smoke-svc trace-smoke fuzz-smoke bench

ci: lint build test allocs audit resilience smoke smoke-svc trace-smoke fuzz-smoke

lint: vet
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt: needs formatting:"; echo "$$fmt"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

allocs:
	$(GO) test -run 'TestAllocGuard' -v .
	$(GO) test -run xxx -bench 'BenchmarkEngineHandlerChained|BenchmarkTimerReset' -benchmem ./internal/sim/

audit:
	$(GO) test -race -v -run 'TestAudit|TestViolation|TestMetamorphic|TestDropAccountingAllAQMs|TestCheckpointLastWriteWins' ./internal/audit/ ./internal/sim/ ./internal/netem/ ./internal/experiment/

resilience:
	$(GO) test -race -v -run 'TestFlapRecoveryAllCCAs|TestGELossInversionBBRvLossBased|TestFaultedRunDeterminism|TestFaultProfileInResultIdentity|TestRunAllSurvivesPanic|TestRunAllWatchdogAbort|TestCheckpointResume' ./internal/experiment/
	$(GO) test -race -run 'TestRTOExponentialBackoffDoubling|TestRTORearmAfterSuccessfulRetransmit' ./internal/tcp/

smoke:
	@tmp=$$(mktemp -d) || exit 1; \
	$(GO) run ./cmd/sweep -faults flap -configs 4 -bws 100Mbps -queues 2 \
		-duration 6s -quiet -audit -strict \
		-checkpoint $$tmp/fault-smoke.ckpt.jsonl -out $$tmp/fault-smoke.json; \
	rc=$$?; rm -rf "$$tmp"; exit $$rc

smoke-svc:
	GO="$(GO)" sh scripts/smoke_svc.sh

trace-smoke:
	GO="$(GO)" sh scripts/smoke_trace.sh

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzFaultsParse -fuzztime $(FUZZTIME) ./internal/faults/
	$(GO) test -run '^$$' -fuzz FuzzCheckpointReload -fuzztime $(FUZZTIME) ./internal/experiment/
	$(GO) test -run '^$$' -fuzz FuzzAQMQueueOps -fuzztime $(FUZZTIME) ./internal/aqm/
	$(GO) test -run '^$$' -fuzz FuzzConnAckProcessing -fuzztime $(FUZZTIME) ./internal/tcp/
	$(GO) test -run '^$$' -fuzz FuzzParseNDJSON -fuzztime $(FUZZTIME) ./internal/telemetry/

bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkTimer' -benchmem ./internal/sim/
