# CI entry points for the TCP-fairness reproduction.
#
#   make ci         — everything below, in order (what a PR must pass)
#   make lint       — formatting (gofmt) and static analysis (go vet)
#   make vet        — static analysis only
#   make build      — compile all packages and commands
#   make test       — full suite under the race detector (covers the
#                     experiment worker pool in internal/experiment/runner.go
#                     and runs every audited/metamorphic suite)
#   make allocs     — zero-allocation event-core gates; built with !race
#                     (the race runtime changes the allocation profile).
#                     Auditing and tracing are off here: the gates prove the
#                     auditor and the telemetry tracer cost nothing when
#                     disabled (TestAllocGuardTracingDisabled pins the same
#                     ≤1 alloc/packet budget with the trace knobs present).
#   make audit      — targeted invariant-auditor suites: conservation across
#                     all AQMs, seeded-bug detection, violation-to-result
#                     plumbing, metamorphic relations
#   make resilience — fault-injection shape suite: flap recovery, bursty-loss
#                     inversion, deterministic replay, runner hardening
#   make smoke      — end-to-end sweeps through cmd/sweep in a private temp
#                     dir with -audit and -strict: a fault sweep (flap preset,
#                     4 cheap configs) and a 3-hop parking-lot topology sweep;
#                     any errored or checkpoint-skipped config fails the target
#   make smoke-svc  — end-to-end sweepd service check (scripts/smoke_svc.sh):
#                     daemon on an ephemeral port, served sweep byte-identical
#                     to a direct CLI run (modulo wall_ns), repeated POST
#                     coalesced with zero new simulations, cache hits visible
#                     on /metrics, a -duration override re-simulated (never
#                     served stale cache), journal compacted on shutdown
#   make smoke-cluster — crash-tolerance check of sweepd cluster mode
#                     (scripts/smoke_cluster.sh): coordinator + 3 workers on
#                     ephemeral ports, one worker SIGKILLed mid-grid, sweep
#                     completes with results byte-identical to a direct
#                     single-process run (modulo wall_ns), every config
#                     uploaded exactly once, re-queue/death counters visible
#                     on /metrics, per-worker journals folded by sweepd -merge,
#                     graceful worker stop releases leases (never expiry)
#   make smoke-chaos — durability check of sweepd under injected faults
#                     (scripts/smoke_chaos.sh): coordinator with journal
#                     fsync failures armed + workers in crash-restart loops
#                     killed by a designated poison config; the poison is
#                     quarantined after 3 crashes, the other results stay
#                     byte-identical to a direct sweep, the journal degrades
#                     and recovers, and a post-run sweepd -fsck finds the
#                     compacted journal clean
#   make smoke-fct  — end-to-end open-loop FCT check (scripts/smoke_fct.sh):
#                     a small mixed mice grid swept directly and through
#                     sweepd (byte-identical modulo wall_ns), solo baselines
#                     auto-appended, per-size-class FCT percentiles in every
#                     result, and the harm-to-FCT matrix rendered by both
#                     cmd/report and the daemon's /report endpoint
#   make smoke-obs  — end-to-end fairness-observatory check
#                     (scripts/smoke_obs.sh): tcpfair -fairness prints a
#                     finite convergence time for a homogeneous CUBIC pair
#                     and exactly one starvation episode (cubic victim, bbr1
#                     culprit) for BBRv1-vs-CUBIC in a 4xBDP FIFO; a
#                     fairness-armed sweep stays byte-identical science to a
#                     plain one; sweepd's /fairness stream matches the local
#                     `sweep -fairness-out` NDJSON byte for byte; the
#                     convergence histogram and build_info gauge appear on
#                     /metrics; cmd/report renders the fairness-dynamics
#                     table and cmd/timeline the jain(t) sparkline
#   make trace-smoke— end-to-end flight-recorder check (scripts/smoke_trace.sh):
#                     tcpfair -telemetry-out records a run, cmd/timeline
#                     renders cwnd + queue-occupancy timelines from it,
#                     sweep -trace-dir writes per-config traces, sweepd -trace
#                     serves the same stream over /v1/sweeps/{id}/trace, and
#                     a traced sweep stays byte-identical to an untraced one
#   make fuzz-smoke — every fuzz target for a short budget, seeded from the
#                     checked-in corpora under */testdata/fuzz
#   make bench      — engine micro-benchmarks (0 allocs/op on reuse paths)
#   make bench-save — record the benchmark trajectories (events/sec,
#                     ns/event, allocs/packet) into BENCH_topo.json (dumbbell
#                     and a 3-hop parking lot), BENCH_fct.json (open-loop
#                     mice churn, competition and solo) and BENCH_obs.json
#                     (fairness observatory off vs armed); run on a quiet host
#   make bench-gate — replay the trajectory and fail on regression: allocs
#                     strictly, speed within a 5× host-variance tolerance

GO ?= go
FUZZTIME ?= 10s

.PHONY: ci lint vet build test allocs audit resilience smoke smoke-svc smoke-cluster smoke-chaos smoke-fct smoke-obs trace-smoke fuzz-smoke bench bench-save bench-gate

ci: lint build test allocs bench-gate audit resilience smoke smoke-svc smoke-cluster smoke-chaos smoke-fct smoke-obs trace-smoke fuzz-smoke

lint: vet
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt: needs formatting:"; echo "$$fmt"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

allocs:
	$(GO) test -run 'TestAllocGuard' -v .
	$(GO) test -run xxx -bench 'BenchmarkEngineHandlerChained|BenchmarkTimerReset' -benchmem ./internal/sim/

audit:
	$(GO) test -race -v -run 'TestAudit|TestViolation|TestMetamorphic|TestDropAccountingAllAQMs|TestCheckpointLastWriteWins' ./internal/audit/ ./internal/sim/ ./internal/netem/ ./internal/experiment/

resilience:
	$(GO) test -race -v -run 'TestFlapRecoveryAllCCAs|TestGELossInversionBBRvLossBased|TestFaultedRunDeterminism|TestFaultProfileInResultIdentity|TestRunAllSurvivesPanic|TestRunAllWatchdogAbort|TestCheckpointResume' ./internal/experiment/
	$(GO) test -race -run 'TestRTOExponentialBackoffDoubling|TestRTORearmAfterSuccessfulRetransmit' ./internal/tcp/

smoke:
	@tmp=$$(mktemp -d) || exit 1; \
	$(GO) run ./cmd/sweep -faults flap -configs 4 -bws 100Mbps -queues 2 \
		-duration 6s -quiet -audit -strict \
		-checkpoint $$tmp/fault-smoke.ckpt.jsonl -out $$tmp/fault-smoke.json && \
	$(GO) run ./cmd/sweep -topo parking-lot-3 -bws 100Mbps -queues 2 -aqms fifo \
		-pairings cubic:cubic -duration 4s -quiet -audit -strict \
		-out $$tmp/topo-smoke.json; \
	rc=$$?; rm -rf "$$tmp"; exit $$rc

smoke-svc:
	GO="$(GO)" sh scripts/smoke_svc.sh

smoke-cluster:
	GO="$(GO)" sh scripts/smoke_cluster.sh

smoke-chaos:
	GO="$(GO)" sh scripts/smoke_chaos.sh

smoke-fct:
	GO="$(GO)" sh scripts/smoke_fct.sh

smoke-obs:
	GO="$(GO)" sh scripts/smoke_obs.sh

trace-smoke:
	GO="$(GO)" sh scripts/smoke_trace.sh

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzFaultsParse -fuzztime $(FUZZTIME) ./internal/faults/
	$(GO) test -run '^$$' -fuzz FuzzCheckpointReload -fuzztime $(FUZZTIME) ./internal/experiment/
	$(GO) test -run '^$$' -fuzz FuzzJournalV2Reload -fuzztime $(FUZZTIME) ./internal/experiment/
	$(GO) test -run '^$$' -fuzz FuzzAQMQueueOps -fuzztime $(FUZZTIME) ./internal/aqm/
	$(GO) test -run '^$$' -fuzz FuzzConnAckProcessing -fuzztime $(FUZZTIME) ./internal/tcp/
	$(GO) test -run '^$$' -fuzz FuzzParseNDJSON -fuzztime $(FUZZTIME) ./internal/telemetry/
	$(GO) test -run '^$$' -fuzz FuzzTopoSpec -fuzztime $(FUZZTIME) ./internal/topo/
	$(GO) test -run '^$$' -fuzz FuzzFlowSpecParse -fuzztime $(FUZZTIME) ./internal/flows/

bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkTimer' -benchmem ./internal/sim/

bench-save:
	BENCH_SAVE=1 $(GO) test -run 'TestBenchTopoTrajectory|TestBenchFCTTrajectory|TestBenchObsTrajectory' -v .

bench-gate:
	$(GO) test -run 'TestBenchTopoTrajectory|TestBenchFCTTrajectory|TestBenchObsTrajectory' -v .
