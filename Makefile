# CI entry points for the TCP-fairness reproduction.
#
#   make ci      — everything below, in order (what a PR must pass)
#   make vet     — static analysis
#   make build   — compile all packages and commands
#   make test    — full suite under the race detector (covers the
#                  experiment worker pool in internal/experiment/runner.go)
#   make allocs  — zero-allocation event-core gates; built with !race
#                  (the race runtime changes the allocation profile)
#   make bench   — engine micro-benchmarks (0 allocs/op on reuse paths)

GO ?= go

.PHONY: ci vet build test allocs bench

ci: vet build test allocs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

allocs:
	$(GO) test -run 'TestAllocGuard' -v .
	$(GO) test -run xxx -bench 'BenchmarkEngineHandlerChained|BenchmarkTimerReset' -benchmem ./internal/sim/

bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkTimer' -benchmem ./internal/sim/
