# CI entry points for the TCP-fairness reproduction.
#
#   make ci         — everything below, in order (what a PR must pass)
#   make vet        — static analysis
#   make build      — compile all packages and commands
#   make test       — full suite under the race detector (covers the
#                     experiment worker pool in internal/experiment/runner.go)
#   make allocs     — zero-allocation event-core gates; built with !race
#                     (the race runtime changes the allocation profile)
#   make resilience — fault-injection shape suite: flap recovery, bursty-loss
#                     inversion, deterministic replay, runner hardening
#   make smoke      — end-to-end fault sweep through cmd/sweep (flap preset,
#                     4 cheap configs)
#   make bench      — engine micro-benchmarks (0 allocs/op on reuse paths)

GO ?= go

.PHONY: ci vet build test allocs resilience smoke bench

ci: vet build test allocs resilience smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

allocs:
	$(GO) test -run 'TestAllocGuard' -v .
	$(GO) test -run xxx -bench 'BenchmarkEngineHandlerChained|BenchmarkTimerReset' -benchmem ./internal/sim/

resilience:
	$(GO) test -race -v -run 'TestFlapRecoveryAllCCAs|TestGELossInversionBBRvLossBased|TestFaultedRunDeterminism|TestFaultProfileInResultIdentity|TestRunAllSurvivesPanic|TestRunAllWatchdogAbort|TestCheckpointResume' ./internal/experiment/
	$(GO) test -race -run 'TestRTOExponentialBackoffDoubling|TestRTORearmAfterSuccessfulRetransmit' ./internal/tcp/

smoke:
	$(GO) run ./cmd/sweep -faults flap -configs 4 -bws 100Mbps -queues 2 -duration 6s -quiet -out /tmp/fault-smoke.json

bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkTimer' -benchmem ./internal/sim/
